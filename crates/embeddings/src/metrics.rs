//! One-stop quality report for an embedding.
//!
//! The paper's optimization measure is the dilation cost alone. A downstream
//! user evaluating a placement usually wants the whole picture at once: the
//! dilation and its distribution over guest edges, the average dilation, the
//! edge congestion under deterministic routing, and how the achieved dilation
//! compares with the paper's prediction and with the Theorem 47 lower bound.
//! [`EmbeddingMetrics::measure`] collects all of that in a single pass-friendly
//! structure that the examples, the `repro` harness and the `gridviz` tables
//! can render.

use core::fmt;
use std::collections::BTreeMap;

use crate::auto::predicted_dilation;
use crate::congestion::{congestion, CongestionReport};
use crate::embedding::Embedding;
use crate::error::Result;
use crate::lower_bound::{dilation_lower_bound, wirelength_lower_bound};

/// Every quality measure of an embedding, gathered in one place.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbeddingMetrics {
    /// The construction name (e.g. `"π ∘ H_V"`).
    pub name: String,
    /// The guest graph, rendered (e.g. `"(4,2,3)-torus"`).
    pub guest: String,
    /// The host graph, rendered.
    pub host: String,
    /// The number of nodes of either graph.
    pub nodes: u64,
    /// The number of guest edges.
    pub guest_edges: u64,
    /// Whether the mapping is injective (always true for the paper's
    /// constructions; reported so broken custom maps are visible).
    pub injective: bool,
    /// The measured dilation cost.
    pub dilation: u64,
    /// The mean host distance over guest edges.
    pub average_dilation: f64,
    /// Host-distance histogram over guest edges.
    pub dilation_histogram: BTreeMap<u64, u64>,
    /// The dilation the paper's theorems guarantee for this pair, when the
    /// pair is covered by a theorem (`None` for hand-built embeddings of
    /// uncovered pairs).
    pub predicted_dilation: Option<u64>,
    /// The Theorem 47 lower bound for lowering-dimension pairs (`None`
    /// otherwise).
    pub lower_bound: Option<u64>,
    /// Tang's exact minimum-wirelength bound
    /// ([`crate::lower_bound::wirelength_lower_bound`]) for hypercube
    /// guests (`None` otherwise). Compare with
    /// [`EmbeddingMetrics::wirelength`].
    pub wirelength_lower_bound: Option<u64>,
    /// Edge congestion under dimension-ordered routing.
    pub congestion: CongestionReport,
}

impl EmbeddingMetrics {
    /// Measures `embedding` exhaustively (every guest edge is swept twice:
    /// once for distances, once for routed congestion).
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::EmbeddingError::TooLarge`] if the guest is too
    /// large for the congestion sweep.
    pub fn measure(embedding: &Embedding) -> Result<EmbeddingMetrics> {
        let guest = embedding.guest();
        let host = embedding.host();
        let (average_dilation, guest_edges) = embedding.average_dilation();
        let congestion = congestion(embedding)?;
        Ok(EmbeddingMetrics {
            name: embedding.name().to_string(),
            guest: guest.to_string(),
            host: host.to_string(),
            nodes: embedding.size(),
            guest_edges,
            injective: embedding.is_injective(),
            dilation: embedding.dilation(),
            average_dilation,
            dilation_histogram: embedding.dilation_histogram(),
            predicted_dilation: predicted_dilation(guest, host).ok(),
            lower_bound: dilation_lower_bound(guest, host).ok(),
            wirelength_lower_bound: wirelength_lower_bound(guest, host).ok(),
            congestion,
        })
    }

    /// The measured wirelength: the total routed path length over guest
    /// edges. Dimension-ordered routes are shortest paths, so this equals
    /// the sum of host distances — the quantity
    /// [`EmbeddingMetrics::wirelength_lower_bound`] bounds from below.
    pub fn wirelength(&self) -> u64 {
        self.congestion.total_path_length
    }

    /// Whether the measured wirelength respects Tang's bound (vacuously true
    /// when the bound does not apply). `false` means a broken theorem or a
    /// broken measurement — the sweeps fold this into `bound_ok`.
    pub fn meets_wirelength_bound(&self) -> bool {
        self.wirelength_lower_bound
            .map(|bound| self.wirelength() >= bound)
            .unwrap_or(true)
    }

    /// Whether the measured dilation meets the paper's guarantee (vacuously
    /// true when no guarantee applies).
    pub fn meets_prediction(&self) -> bool {
        self.predicted_dilation
            .map(|predicted| self.dilation <= predicted)
            .unwrap_or(true)
    }

    /// The ratio of the measured dilation to the Theorem 47 lower bound, when
    /// the bound applies and is positive.
    pub fn optimality_ratio(&self) -> Option<f64> {
        match self.lower_bound {
            Some(bound) if bound > 0 => Some(self.dilation as f64 / bound as f64),
            _ => None,
        }
    }
}

impl fmt::Display for EmbeddingMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} : {} -> {}", self.name, self.guest, self.host)?;
        writeln!(
            f,
            "  nodes {}, guest edges {}, injective {}",
            self.nodes, self.guest_edges, self.injective
        )?;
        write!(
            f,
            "  dilation {} (mean {:.3}), congestion {} (mean {:.3})",
            self.dilation,
            self.average_dilation,
            self.congestion.max_congestion,
            self.congestion.average_congestion
        )?;
        if let Some(predicted) = self.predicted_dilation {
            write!(f, ", predicted {predicted}")?;
        }
        if let Some(bound) = self.lower_bound {
            write!(f, ", lower bound {bound}")?;
        }
        if let Some(bound) = self.wirelength_lower_bound {
            write!(f, ", wirelength {} (bound {bound})", self.wirelength())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::embed;
    use crate::basic::embed_ring_in;
    use std::sync::Arc;
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn metrics_of_a_unit_dilation_embedding() {
        let host = Grid::mesh(shape(&[4, 2, 3]));
        let e = embed_ring_in(&host).unwrap();
        let m = EmbeddingMetrics::measure(&e).unwrap();
        assert_eq!(m.nodes, 24);
        assert_eq!(m.guest_edges, 24);
        assert!(m.injective);
        assert_eq!(m.dilation, 1);
        assert!((m.average_dilation - 1.0).abs() < 1e-12);
        assert_eq!(m.dilation_histogram.get(&1), Some(&24));
        assert_eq!(m.predicted_dilation, Some(1));
        assert!(m.meets_prediction());
        assert_eq!(m.congestion.max_congestion, 1);
        // Increasing dimension: Theorem 47 does not apply.
        assert_eq!(m.lower_bound, None);
        assert_eq!(m.optimality_ratio(), None);
        let rendered = m.to_string();
        assert!(rendered.contains("dilation 1"));
        assert!(rendered.contains("->"));
    }

    #[test]
    fn metrics_of_a_lowering_dimension_embedding_report_the_lower_bound() {
        let guest = Grid::mesh(shape(&[8, 8]));
        let host = Grid::line(64).unwrap();
        let e = embed(&guest, &host).unwrap();
        let m = EmbeddingMetrics::measure(&e).unwrap();
        assert_eq!(m.dilation, 8);
        assert!(m.meets_prediction());
        let bound = m.lower_bound.unwrap();
        assert!(bound >= 1 && bound <= m.dilation);
        let ratio = m.optimality_ratio().unwrap();
        assert!(ratio >= 1.0);
        assert!(m.to_string().contains("lower bound"));
    }

    #[test]
    fn hypercube_guests_report_the_tang_wirelength_bound() {
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::torus(shape(&[4, 4]));
        let e = embed(&guest, &host).unwrap();
        let m = EmbeddingMetrics::measure(&e).unwrap();
        let bound = m.wirelength_lower_bound.unwrap();
        assert!(m.wirelength() >= bound, "{} < {bound}", m.wirelength());
        assert!(m.meets_wirelength_bound());
        assert!(m.to_string().contains("wirelength"));
        // Non-hypercube guests carry no wirelength bound, vacuously met.
        let other = embed_ring_in(&Grid::mesh(shape(&[4, 2, 3]))).unwrap();
        let m = EmbeddingMetrics::measure(&other).unwrap();
        assert_eq!(m.wirelength_lower_bound, None);
        assert!(m.meets_wirelength_bound());
    }

    #[test]
    fn histogram_mass_equals_guest_edges() {
        let guest = Grid::torus(shape(&[3, 3]));
        let host = Grid::mesh(shape(&[3, 3]));
        let e = embed(&guest, &host).unwrap();
        let m = EmbeddingMetrics::measure(&e).unwrap();
        assert_eq!(m.dilation_histogram.values().sum::<u64>(), m.guest_edges);
        assert_eq!(*m.dilation_histogram.keys().max().unwrap(), m.dilation);
    }

    #[test]
    fn non_injective_custom_maps_are_reported_not_hidden() {
        let line = Grid::line(6).unwrap();
        let host = Grid::line(6).unwrap();
        let broken = Embedding::new(
            line,
            host,
            "constant",
            Arc::new(|_| topology::Coord::from_slice(&[0]).unwrap()),
        )
        .unwrap();
        let m = EmbeddingMetrics::measure(&broken).unwrap();
        assert!(!m.injective);
        assert_eq!(m.dilation, 0);
        // The paper's prediction for line → line is 1; the broken map does
        // not beat it meaningfully, but `meets_prediction` only compares
        // dilation numbers, so it stays true — injectivity is the field that
        // flags the problem.
        assert!(m.meets_prediction());
    }
}
