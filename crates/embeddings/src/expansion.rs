//! The *expansion* relation between shapes (Definition 30).
//!
//! A shape `M = (m_1, …, m_c)` is an expansion of a shape `L = (l_1, …, l_d)`
//! (`d < c`) if the components of `M` can be partitioned into `d` lists
//! `V_1, …, V_d` with `Π V_i = l_i`; `V = (V_1, …, V_d)` is an *expansion
//! factor* of `L` into `M`. Expansion factors drive the increasing-dimension
//! embeddings of Section 4.1 and, read backwards, the *simple reduction*
//! embeddings of Section 4.2.1.

use mixedradix::Permutation;
use topology::Shape;

use crate::error::{EmbeddingError, Result};

/// An expansion factor `V = (V_1, …, V_d)` of a shape `L` into a shape `M`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpansionFactor {
    lists: Vec<Vec<u32>>,
}

impl ExpansionFactor {
    /// Creates an expansion factor from its lists. Every component must be
    /// greater than 1 and every list non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidFactor`] on malformed input.
    pub fn new(lists: Vec<Vec<u32>>) -> Result<Self> {
        if lists.is_empty() {
            return Err(EmbeddingError::InvalidFactor {
                details: "an expansion factor needs at least one list".into(),
            });
        }
        for (i, list) in lists.iter().enumerate() {
            if list.is_empty() {
                return Err(EmbeddingError::InvalidFactor {
                    details: format!("list V_{} is empty", i + 1),
                });
            }
            if let Some(&bad) = list.iter().find(|&&v| v < 2) {
                return Err(EmbeddingError::InvalidFactor {
                    details: format!("list V_{} contains the component {bad} < 2", i + 1),
                });
            }
        }
        Ok(ExpansionFactor { lists })
    }

    /// The lists `V_1, …, V_d`.
    pub fn lists(&self) -> &[Vec<u32>] {
        &self.lists
    }

    /// The number of lists `d`.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the factor has no lists (never true for a validated factor).
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The concatenation `V = V_1 ∘ V_2 ∘ … ∘ V_d`.
    pub fn flattened(&self) -> Vec<u32> {
        self.lists.iter().flatten().copied().collect()
    }

    /// The list `V_i` as its own shape (radix base).
    ///
    /// # Errors
    ///
    /// Returns an error if `i` is out of range.
    pub fn sub_shape(&self, i: usize) -> Result<Shape> {
        let list = self.lists.get(i).ok_or(EmbeddingError::InvalidFactor {
            details: format!("no list V_{}", i + 1),
        })?;
        Ok(Shape::new(list.clone())?)
    }

    /// The product `Π V_i`.
    pub fn product(&self, i: usize) -> u64 {
        self.lists[i].iter().map(|&v| v as u64).product()
    }

    /// Checks that this factor is a valid expansion factor of `l` into `m`:
    /// `Π V_i = l_i` for all `i`, and `m` is a permutation of the flattened
    /// list.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidFactor`] describing the first
    /// violation found.
    pub fn validate(&self, l: &Shape, m: &Shape) -> Result<()> {
        if self.len() != l.dim() {
            return Err(EmbeddingError::InvalidFactor {
                details: format!(
                    "factor has {} lists but L has dimension {}",
                    self.len(),
                    l.dim()
                ),
            });
        }
        for i in 0..self.len() {
            if self.product(i) != l.radix(i) as u64 {
                return Err(EmbeddingError::InvalidFactor {
                    details: format!(
                        "Π V_{} = {} but l_{} = {}",
                        i + 1,
                        self.product(i),
                        i + 1,
                        l.radix(i)
                    ),
                });
            }
        }
        let mut flat = self.flattened();
        let mut target = m.radices().to_vec();
        flat.sort_unstable();
        target.sort_unstable();
        if flat != target {
            return Err(EmbeddingError::InvalidFactor {
                details: format!("M = {m} is not a permutation of the flattened factor"),
            });
        }
        Ok(())
    }

    /// The permutation `π` with `π(V) = M`, where `V` is the flattened factor.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidFactor`] if `M` is not a permutation
    /// of the flattened factor.
    pub fn permutation_to(&self, m: &Shape) -> Result<Permutation> {
        Permutation::mapping(&self.flattened(), m.radices()).ok_or(EmbeddingError::InvalidFactor {
            details: format!("M = {m} is not a permutation of the flattened factor"),
        })
    }

    /// Whether every list has at least two components, the first of which is
    /// even — the condition of Theorem 32(iii) under which an even-size torus
    /// embeds in a mesh with unit dilation.
    pub fn all_even_first(&self) -> bool {
        self.lists
            .iter()
            .all(|list| list.len() >= 2 && list[0] % 2 == 0)
    }

    /// Reorders each list so that an even component (if present) comes first.
    /// Returns `true` if afterwards [`ExpansionFactor::all_even_first`] holds.
    pub fn reorder_even_first(&mut self) -> bool {
        for list in &mut self.lists {
            if let Some(pos) = list.iter().position(|&v| v % 2 == 0) {
                list.swap(0, pos);
            }
        }
        self.all_even_first()
    }
}

/// Whether `m` is an expansion of `l` (Definition 30). Requires `dim L < dim M`.
pub fn is_expansion(l: &Shape, m: &Shape) -> bool {
    l.dim() < m.dim() && find_expansion_factor(l, m).is_some()
}

/// Finds an expansion factor of `l` into `m`, if one exists.
///
/// The components of `m` are assigned to the dimensions of `l` by
/// backtracking on divisibility; shapes in this library are tiny (≤ 32
/// components), so the search is immediate in practice.
pub fn find_expansion_factor(l: &Shape, m: &Shape) -> Option<ExpansionFactor> {
    find_expansion_factor_with(l, m, false)
}

/// Finds an expansion factor of `l` into `m` in which every list has at least
/// two components, one of them even, and reorders each list even-first —
/// the factor shape needed for the unit-dilation torus-in-mesh embedding of
/// Theorem 32(iii).
pub fn find_expansion_factor_even_first(l: &Shape, m: &Shape) -> Option<ExpansionFactor> {
    let mut factor = find_expansion_factor_with(l, m, true)?;
    if factor.reorder_even_first() {
        Some(factor)
    } else {
        None
    }
}

fn find_expansion_factor_with(
    l: &Shape,
    m: &Shape,
    require_even_pairs: bool,
) -> Option<ExpansionFactor> {
    if l.size() != m.size() || l.dim() >= m.dim() {
        return None;
    }
    let d = l.dim();
    // Sort the host components in descending order: large components are the
    // most constrained, so placing them first prunes aggressively.
    let mut components: Vec<u32> = m.radices().to_vec();
    components.sort_unstable_by(|a, b| b.cmp(a));

    let mut remaining: Vec<u64> = l.radices().iter().map(|&x| x as u64).collect();
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); d];

    fn assign(
        idx: usize,
        components: &[u32],
        remaining: &mut [u64],
        groups: &mut [Vec<u32>],
        require_even_pairs: bool,
    ) -> bool {
        if idx == components.len() {
            if remaining.iter().any(|&r| r != 1) {
                return false;
            }
            if require_even_pairs
                && groups
                    .iter()
                    .any(|g| g.len() < 2 || g.iter().all(|&v| v % 2 != 0))
            {
                return false;
            }
            return true;
        }
        let value = components[idx];
        let mut tried: Vec<u64> = Vec::new();
        for i in 0..remaining.len() {
            if !remaining[i].is_multiple_of(value as u64) {
                continue;
            }
            // Skip branches symmetric to one already tried (same remaining
            // product means the same sub-problem).
            if tried.contains(&remaining[i]) {
                continue;
            }
            tried.push(remaining[i]);
            remaining[i] /= value as u64;
            groups[i].push(value);
            if assign(idx + 1, components, remaining, groups, require_even_pairs) {
                return true;
            }
            groups[i].pop();
            remaining[i] *= value as u64;
        }
        false
    }

    if assign(
        0,
        &components,
        &mut remaining,
        &mut groups,
        require_even_pairs,
    ) {
        Some(ExpansionFactor { lists: groups })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn paper_example_6_8_80() {
        // M = (2,4,3,8,5,4) is an expansion of L = (6,8,80); one factor is
        // V_1 = (2,3), V_2 = (8), V_3 = (4,5,4).
        let l = shape(&[6, 8, 80]);
        let m = shape(&[2, 4, 3, 8, 5, 4]);
        assert!(is_expansion(&l, &m));
        let factor = find_expansion_factor(&l, &m).unwrap();
        factor.validate(&l, &m).unwrap();
        assert_eq!(factor.len(), 3);
        assert_eq!(factor.product(0), 6);
        assert_eq!(factor.product(1), 8);
        assert_eq!(factor.product(2), 80);
        // The flattened factor is a permutation of M.
        let perm = factor.permutation_to(&m).unwrap();
        assert_eq!(
            perm.apply_slice(&factor.flattened()).unwrap(),
            m.radices().to_vec()
        );
    }

    #[test]
    fn paper_example_6_12_into_6_3_2_2() {
        // Both ((6),(3,2,2)) and ((2,3),(6,2)) are expansion factors of
        // L = (6,12) into M = (6,3,2,2); only the latter gives even-first
        // lists of length >= 2.
        let l = shape(&[6, 12]);
        let m = shape(&[6, 3, 2, 2]);
        assert!(find_expansion_factor(&l, &m).is_some());
        let even = find_expansion_factor_even_first(&l, &m).unwrap();
        assert!(even.all_even_first());
        even.validate(&l, &m).unwrap();
        for list in even.lists() {
            assert!(list.len() >= 2);
            assert_eq!(list[0] % 2, 0);
        }
    }

    #[test]
    fn hypercube_shapes_are_expansions_of_power_of_two_shapes() {
        // Theorem 33.
        for radices in [vec![4u32, 8], vec![2, 16], vec![8, 8, 4], vec![32]] {
            let l = shape(&radices);
            let bits = (l.size() as f64).log2() as usize;
            let m = Shape::binary(bits).unwrap();
            assert!(is_expansion(&l, &m), "hypercube expansion of {l}");
            let factor = find_expansion_factor(&l, &m).unwrap();
            factor.validate(&l, &m).unwrap();
        }
    }

    #[test]
    fn non_expansions_are_rejected() {
        // Same size but the components cannot be regrouped: neither group of
        // product 6 can absorb the component 4.
        let l = shape(&[6, 6]);
        let m = shape(&[4, 3, 3]);
        assert!(find_expansion_factor(&l, &m).is_none());
        // Different sizes are never expansions.
        assert!(!is_expansion(&shape(&[4]), &shape(&[2, 3])));
        // d >= c is never an expansion.
        assert!(!is_expansion(&shape(&[2, 2]), &shape(&[4])));
        assert!(!is_expansion(&shape(&[2, 2]), &shape(&[2, 2])));
    }

    #[test]
    fn even_first_requires_even_components_in_every_list() {
        // L = (9, 4): the list for 9 can only contain odd components, so the
        // even-first factor does not exist even though an expansion factor
        // does.
        let l = shape(&[9, 4]);
        let m = shape(&[3, 3, 2, 2]);
        assert!(find_expansion_factor(&l, &m).is_some());
        assert!(find_expansion_factor_even_first(&l, &m).is_none());
    }

    #[test]
    fn even_first_requires_at_least_two_components_per_list() {
        // L = (2, 8) into M = (2, 4, 2): the dimension of length 2 must map to
        // the single component (2), so no factor with all lists of length >= 2
        // exists.
        let l = shape(&[2, 8]);
        let m = shape(&[2, 4, 2]);
        assert!(find_expansion_factor(&l, &m).is_some());
        assert!(find_expansion_factor_even_first(&l, &m).is_none());
    }

    #[test]
    fn factor_construction_validates_input() {
        assert!(ExpansionFactor::new(vec![]).is_err());
        assert!(ExpansionFactor::new(vec![vec![2, 3], vec![]]).is_err());
        assert!(ExpansionFactor::new(vec![vec![2, 1]]).is_err());
        let ok = ExpansionFactor::new(vec![vec![2, 3], vec![4]]).unwrap();
        assert_eq!(ok.flattened(), vec![2, 3, 4]);
        assert_eq!(ok.len(), 2);
        assert!(!ok.is_empty());
        assert_eq!(ok.sub_shape(0).unwrap().radices(), &[2, 3]);
        assert!(ok.sub_shape(5).is_err());
    }

    #[test]
    fn validate_rejects_wrong_products_and_wrong_multisets() {
        let l = shape(&[6, 4]);
        let m = shape(&[2, 3, 2, 2]);
        let good = ExpansionFactor::new(vec![vec![2, 3], vec![2, 2]]).unwrap();
        good.validate(&l, &m).unwrap();
        let wrong_product = ExpansionFactor::new(vec![vec![2, 2], vec![3, 2]]).unwrap();
        assert!(wrong_product.validate(&l, &m).is_err());
        let wrong_dim = ExpansionFactor::new(vec![vec![6, 4]]).unwrap();
        assert!(wrong_dim.validate(&l, &m).is_err());
        let wrong_multiset = ExpansionFactor::new(vec![vec![6], vec![4]]).unwrap();
        assert!(wrong_multiset.validate(&l, &m).is_err());
    }

    #[test]
    fn reorder_even_first_moves_even_components() {
        let mut factor = ExpansionFactor::new(vec![vec![3, 2], vec![5, 4, 3]]).unwrap();
        assert!(!factor.all_even_first());
        assert!(factor.reorder_even_first());
        assert_eq!(factor.lists()[0][0], 2);
        assert_eq!(factor.lists()[1][0], 4);
    }
}
