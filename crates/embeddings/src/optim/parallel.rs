//! Sharded annealing: N independently-seeded optimizer walks per call,
//! fanned out on the `topology::parallel` fork–join pool and reduced to the
//! lexicographically best `(cost, seed, shard)` result.
//!
//! The sequential walk of [`Optimizer`] is the single-trial
//! bottleneck (~10⁵ moves/s per core) and simulated annealing restarts are
//! embarrassingly parallel: walks share nothing but the read-only starting
//! table, so N shards explore N seeds in the wall-clock time of one. Under
//! [`ShardStrategy::Portfolio`] the shards stop being mere restarts and
//! become a *portfolio*: each non-zero shard also gets its own
//! [`MoveMix`](super::MoveMix) and temperature schedule from a fixed palette
//! ([`shard_config`]), so one call races the historical pairwise walk
//! against k-cycle-heavy, block-swap-heavy and hot-start variants. Shard
//! configs are a pure function of `(base config, shard index, strategy)` —
//! never of which worker ran the shard — so both strategies keep the two
//! contracts that make the fan-out safe to use everywhere:
//!
//! * **worker-count invariance** — every shard's seed is derived from the
//!   base seed and the shard index (never from which worker ran it), and the
//!   reduce picks the minimum of the totally ordered key
//!   `(best cost, shard seed, shard index)`, so the result is bit-identical
//!   for any worker count — the same invariance contract the explab executor
//!   enforces for whole sweeps;
//! * **shard-0 compatibility** — shard 0 runs the base seed *and the base
//!   config* unchanged under every strategy, so a 1-shard call is
//!   bit-identical to [`Optimizer::optimize`] with the same
//!   [`OptimizerConfig`], and the per-shard reports of an N-shard call
//!   expose "what the sequential walk would have found" as shard 0's entry
//!   (the sharded-vs-sequential tables in EXPERIMENTS.md are built from
//!   exactly that — including the portfolio columns, which compare the
//!   variant shards against that baseline).
//!
//! Each shard owns a private [`Objective`] built by the caller's factory —
//! objectives carry mutable incremental state (load vectors, cached routes)
//! and must never be shared across walks.
//!
//! # Example
//!
//! Seeded, sharded refinement of a paper pair — the (4, 6)-torus into the
//! (2, 2, 2, 3)-mesh (dilation 2 by Theorem 32's expansion construction):
//!
//! ```
//! use embeddings::auto::embed;
//! use embeddings::optim::parallel::{optimize_sharded, ShardedConfig};
//! use embeddings::optim::{CongestionObjective, OptimizerConfig};
//! use topology::{Grid, Shape};
//!
//! let guest = Grid::torus(Shape::new(vec![4, 6]).unwrap());
//! let host = Grid::mesh(Shape::new(vec![2, 2, 2, 3]).unwrap());
//! let constructive = embed(&guest, &host).unwrap();
//!
//! let config = ShardedConfig {
//!     base: OptimizerConfig { seed: 1987, steps: 300, ..OptimizerConfig::default() },
//!     shards: 4,
//!     workers: 0, // automatic
//!     ..ShardedConfig::default()
//! };
//! let sharded = optimize_sharded(
//!     &constructive,
//!     || CongestionObjective::new(&guest, &host),
//!     &config,
//! )
//! .unwrap();
//!
//! // One per-shard report per walk; the winner is the lexicographic best.
//! assert_eq!(sharded.shards.len(), 4);
//! assert!(sharded.outcome.report.best <= sharded.outcome.report.initial);
//! assert!(sharded.outcome.embedding.is_injective());
//! // The best-of-N result is never worse than any single shard's.
//! assert!(sharded.shards.iter().all(|s| sharded.outcome.report.best <= s.report.best));
//! ```

use topology::parallel::{parallel_map_reduce, recommended_threads, splitmix64};

use super::{
    refined_embedding, MoveMix, Objective, OptimOutcome, OptimReport, Optimizer, OptimizerConfig,
};
use crate::embedding::Embedding;
use crate::error::Result;

/// The seed shard `shard` anneals with, for a base seed of `base`.
///
/// Shard 0 keeps the base seed unchanged — a 1-shard run is bit-identical to
/// the sequential [`Optimizer`] — and every other shard mixes its index
/// through SplitMix64 so neighboring shards' walks are uncorrelated.
pub fn shard_seed(base: u64, shard: u32) -> u64 {
    if shard == 0 {
        base
    } else {
        splitmix64(base ^ u64::from(shard))
    }
}

/// How the shards of one sharded run differ from each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Every shard runs the base config; only the seed varies. The
    /// historical best-of-N-restarts behavior.
    #[default]
    Restarts,
    /// Shard 0 still runs the base config (preserving shard-0 ≡ sequential),
    /// but every other shard also draws a [`MoveMix`] and temperature
    /// schedule from the fixed [`shard_config`] palette, racing compound
    /// move repertoires against the pairwise baseline.
    Portfolio,
}

/// The palette entries behind [`ShardStrategy::Portfolio`], cycled by the
/// non-zero shards: a style name plus the mix/temperature the style anneals
/// with. Kept as data so reports, docs and tests all name the same styles.
const PORTFOLIO: [(&str, MoveMix, f64); 4] = [
    (
        "kcycle",
        MoveMix {
            reverse_per_mille: 150,
            kcycle_per_mille: 300,
            block_per_mille: 50,
        },
        1.0,
    ),
    (
        "block",
        MoveMix {
            reverse_per_mille: 150,
            kcycle_per_mille: 50,
            block_per_mille: 300,
        },
        1.0,
    ),
    ("hot", MoveMix::pairwise(), 4.0),
    ("hot-compound", MoveMix::compound(), 4.0),
];

/// The exact config shard `shard` anneals with, plus its style name — a
/// pure function of `(base, shard, strategy)` so results stay worker-count
/// invariant and externally reproducible.
///
/// Shard 0 always runs `base` itself (only the seed rule of [`shard_seed`]
/// applies, which leaves shard 0's seed unchanged too); under
/// [`ShardStrategy::Restarts`] so does every other shard. Under
/// [`ShardStrategy::Portfolio`] the non-zero shards cycle the palette:
/// `"kcycle"` (rotation-heavy mix), `"block"` (block-swap-heavy mix),
/// `"hot"` (pairwise mix, 4× initial temperature), `"hot-compound"`
/// ([`MoveMix::compound`], 4× initial temperature).
pub fn shard_config(
    base: &OptimizerConfig,
    shard: u32,
    strategy: ShardStrategy,
) -> (OptimizerConfig, &'static str) {
    let mut config = OptimizerConfig {
        seed: shard_seed(base.seed, shard),
        ..*base
    };
    if shard == 0 || strategy == ShardStrategy::Restarts {
        return (config, "base");
    }
    let (style, mix, heat) = PORTFOLIO[((shard - 1) % PORTFOLIO.len() as u32) as usize];
    config.mix = mix;
    config.initial_temperature = base.initial_temperature * heat;
    (config, style)
}

/// Configuration of one sharded optimization: the per-walk annealing config
/// plus how many walks to run, how they differ, and on how many workers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardedConfig {
    /// The per-shard annealing configuration. `base.seed` is the *base*
    /// seed; shard `s` anneals with [`shard_config`]`(base, s, strategy)`.
    pub base: OptimizerConfig,
    /// The number of independently-seeded walks (`0` is treated as `1`).
    pub shards: u32,
    /// How the walks differ: seed-only restarts or a mix/temperature
    /// portfolio.
    pub strategy: ShardStrategy,
    /// Worker threads for the fork–join pool (`0` = automatic). Purely a
    /// scheduling knob: results are bit-identical for any value.
    pub workers: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            base: OptimizerConfig::default(),
            shards: 4,
            strategy: ShardStrategy::Restarts,
            workers: 0,
        }
    }
}

/// One shard's walk, in the provenance trail of a sharded run.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport {
    /// The shard index (`0..shards`).
    pub shard: u32,
    /// The seed the shard annealed with ([`shard_seed`] of the base seed).
    pub seed: u64,
    /// The [`shard_config`] style name the shard ran: `"base"` for the
    /// unmodified config (always shard 0, and every shard under
    /// [`ShardStrategy::Restarts`]), otherwise the portfolio palette entry.
    pub style: &'static str,
    /// The shard's run statistics. Shard 0's entry is exactly what the
    /// sequential optimizer would have reported.
    pub report: OptimReport,
}

/// The result of [`optimize_sharded`]: the winning walk's outcome plus the
/// full per-shard provenance.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// The lexicographically best walk's refined embedding, table and
    /// statistics (same shape as a sequential [`Optimizer::optimize`]
    /// outcome).
    pub outcome: OptimOutcome,
    /// The index of the winning shard.
    pub winner: u32,
    /// Every shard's report, ordered by shard index.
    pub shards: Vec<ShardReport>,
}

/// Runs `config.shards` independently-seeded annealing walks over
/// `embedding`'s placement table — each with a private objective built by
/// `factory` — and returns the lexicographically best `(cost, seed, shard)`
/// result together with per-shard provenance.
///
/// Results are bit-identical for any `config.workers`; see the
/// [module docs](self) for the invariance contract.
///
/// # Errors
///
/// Returns [`crate::error::EmbeddingError::TooLarge`] for guests too large
/// to materialize as a table, and propagates the first (by shard index)
/// error any `factory` call reports.
pub fn optimize_sharded<O, F>(
    embedding: &Embedding,
    factory: F,
    config: &ShardedConfig,
) -> Result<ShardedOutcome>
where
    O: Objective,
    F: Fn() -> Result<O> + Sync,
{
    let shards = config.shards.max(1);
    let workers = if config.workers == 0 {
        recommended_threads()
    } else {
        config.workers
    };
    let start_table = embedding.to_table()?;
    let base = config.base;
    let strategy = config.strategy;
    let guest = embedding.guest().shape();

    type ShardRun = (u32, &'static str, Result<(Vec<u64>, OptimReport)>);
    let mut runs: Vec<ShardRun> = parallel_map_reduce(
        u64::from(shards),
        workers,
        Vec::new(),
        |range| {
            range
                .map(|s| {
                    let shard = s as u32;
                    let (shard_cfg, style) = shard_config(&base, shard, strategy);
                    let result = factory().map(|mut objective| {
                        let optimizer = Optimizer::new(shard_cfg);
                        optimizer.refine_table(guest, start_table.clone(), &mut objective)
                    });
                    (shard, style, result)
                })
                .collect::<Vec<_>>()
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    // The fold already appends chunks in range order, but the winner must
    // not depend on how the range was split: re-establish shard order
    // explicitly before reducing.
    runs.sort_unstable_by_key(|(shard, _, _)| *shard);

    let mut tables: Vec<Vec<u64>> = Vec::with_capacity(runs.len());
    let mut reports: Vec<ShardReport> = Vec::with_capacity(runs.len());
    for (shard, style, result) in runs {
        let (table, report) = result?;
        tables.push(table);
        reports.push(ShardReport {
            shard,
            seed: shard_seed(base.seed, shard),
            style,
            report,
        });
    }
    let winner = reports
        .iter()
        .min_by_key(|s| (s.report.best, s.seed, s.shard))
        .expect("at least one shard")
        .shard;
    let best = &reports[winner as usize];
    let best_table = std::mem::take(&mut tables[winner as usize]);
    let refined = refined_embedding(embedding, best.report.objective, &best_table)?;
    Ok(ShardedOutcome {
        outcome: OptimOutcome {
            embedding: refined,
            table: best_table,
            report: best.report.clone(),
        },
        winner,
        shards: reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::embed;
    use crate::optim::CongestionObjective;
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn paper_pair() -> (Grid, Grid) {
        (
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        )
    }

    #[test]
    fn shard_zero_keeps_the_base_seed() {
        assert_eq!(shard_seed(1987, 0), 1987);
        assert_ne!(shard_seed(1987, 1), 1987);
        assert_ne!(shard_seed(1987, 1), shard_seed(1987, 2));
        assert_ne!(shard_seed(1987, 1), shard_seed(1988, 1));
    }

    #[test]
    fn shard_config_palette_is_a_pure_function_of_shard_and_strategy() {
        let base = OptimizerConfig {
            seed: 1987,
            steps: 123,
            ..OptimizerConfig::default()
        };
        // Restarts: every shard is "base" with only the seed varied.
        for shard in 0..6 {
            let (config, style) = shard_config(&base, shard, ShardStrategy::Restarts);
            assert_eq!(style, "base");
            assert_eq!(config.seed, shard_seed(base.seed, shard));
            assert_eq!(config.mix, base.mix);
            assert_eq!(config.initial_temperature, base.initial_temperature);
        }
        // Portfolio: shard 0 stays base; shards 1.. cycle the palette.
        let (zero, style) = shard_config(&base, 0, ShardStrategy::Portfolio);
        assert_eq!((style, zero.mix), ("base", base.mix));
        let styles: Vec<&str> = (1..=PORTFOLIO.len() as u32 + 1)
            .map(|s| shard_config(&base, s, ShardStrategy::Portfolio).1)
            .collect();
        assert_eq!(styles[0], styles[PORTFOLIO.len()], "palette cycles");
        assert_eq!(
            styles[..PORTFOLIO.len()]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            PORTFOLIO.len(),
            "palette entries are distinct styles"
        );
        for shard in 1..=PORTFOLIO.len() as u32 {
            let (config, style) = shard_config(&base, shard, ShardStrategy::Portfolio);
            let (name, mix, heat) = PORTFOLIO[(shard as usize - 1) % PORTFOLIO.len()];
            assert_eq!(style, name);
            assert_eq!(config.mix, mix);
            assert_eq!(config.initial_temperature, base.initial_temperature * heat);
            assert_eq!(config.seed, shard_seed(base.seed, shard));
            assert_eq!(config.steps, base.steps, "budget knobs never diversify");
        }
    }

    #[test]
    fn portfolio_results_are_bit_identical_for_any_worker_count() {
        let (guest, host) = paper_pair();
        let e = embed(&guest, &host).unwrap();
        let base = OptimizerConfig {
            seed: 9,
            steps: 250,
            ..OptimizerConfig::default()
        };
        let run = |workers: usize| {
            optimize_sharded(
                &e,
                || CongestionObjective::new(&guest, &host),
                &ShardedConfig {
                    base,
                    shards: 6,
                    strategy: ShardStrategy::Portfolio,
                    workers,
                },
            )
            .unwrap()
        };
        let reference = run(1);
        assert_eq!(reference.shards[1].style, PORTFOLIO[0].0);
        for workers in [2, 3, 8] {
            let other = run(workers);
            assert_eq!(reference.outcome.table, other.outcome.table, "{workers}");
            assert_eq!(reference.winner, other.winner);
            assert_eq!(reference.shards, other.shards);
        }
    }

    #[test]
    fn results_are_bit_identical_for_any_worker_count() {
        let (guest, host) = paper_pair();
        let e = embed(&guest, &host).unwrap();
        let base = OptimizerConfig {
            seed: 9,
            steps: 250,
            ..OptimizerConfig::default()
        };
        let reference = optimize_sharded(
            &e,
            || CongestionObjective::new(&guest, &host),
            &ShardedConfig {
                base,
                shards: 5,
                workers: 1,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        for workers in [2, 3, 8] {
            let other = optimize_sharded(
                &e,
                || CongestionObjective::new(&guest, &host),
                &ShardedConfig {
                    base,
                    shards: 5,
                    workers,
                    ..ShardedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(reference.outcome.table, other.outcome.table, "{workers}");
            assert_eq!(reference.winner, other.winner);
            assert_eq!(reference.shards, other.shards);
        }
    }

    #[test]
    fn one_shard_matches_the_sequential_optimizer() {
        let (guest, host) = paper_pair();
        let e = embed(&guest, &host).unwrap();
        let base = OptimizerConfig {
            seed: 42,
            steps: 300,
            ..OptimizerConfig::default()
        };
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let sequential = Optimizer::new(base).optimize(&e, &mut objective).unwrap();
        let sharded = optimize_sharded(
            &e,
            || CongestionObjective::new(&guest, &host),
            &ShardedConfig {
                base,
                shards: 1,
                workers: 4,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sharded.outcome.table, sequential.table);
        assert_eq!(sharded.outcome.report, sequential.report);
        assert_eq!(sharded.winner, 0);
    }

    #[test]
    fn winner_is_the_lexicographic_best_shard() {
        let (guest, host) = paper_pair();
        let e = embed(&guest, &host).unwrap();
        let sharded = optimize_sharded(
            &e,
            || CongestionObjective::new(&guest, &host),
            &ShardedConfig {
                base: OptimizerConfig {
                    seed: 3,
                    steps: 400,
                    ..OptimizerConfig::default()
                },
                shards: 6,
                workers: 2,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sharded.shards.len(), 6);
        let min = sharded
            .shards
            .iter()
            .map(|s| (s.report.best, s.seed, s.shard))
            .min()
            .unwrap();
        assert_eq!(min.2, sharded.winner);
        assert_eq!(sharded.outcome.report.best, min.0);
        // Best-of-N never loses to any single shard, and the winning table
        // re-measures to the reported best.
        for s in &sharded.shards {
            assert!(sharded.outcome.report.best <= s.report.best);
        }
        let mut fresh = CongestionObjective::new(&guest, &host).unwrap();
        assert_eq!(
            fresh.rebuild(&sharded.outcome.table),
            sharded.outcome.report.best
        );
    }

    #[test]
    fn zero_shards_are_treated_as_one() {
        let (guest, host) = paper_pair();
        let e = embed(&guest, &host).unwrap();
        let sharded = optimize_sharded(
            &e,
            || CongestionObjective::new(&guest, &host),
            &ShardedConfig {
                base: OptimizerConfig {
                    seed: 1,
                    steps: 50,
                    ..OptimizerConfig::default()
                },
                shards: 0,
                workers: 0,
                ..ShardedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sharded.shards.len(), 1);
    }

    #[test]
    fn factory_errors_propagate() {
        let (guest, host) = paper_pair();
        let wrong_host = Grid::mesh(shape(&[4, 4]));
        let e = embed(&guest, &host).unwrap();
        let result = optimize_sharded(
            &e,
            || CongestionObjective::new(&guest, &wrong_host),
            &ShardedConfig::default(),
        );
        assert!(result.is_err());
    }
}
