//! Generalized embeddings for increasing dimension (Section 4.1,
//! Definition 31, Theorems 32 and 33).
//!
//! Given shapes `L` (dimension `d`) and `M` (dimension `c > d`) with `M` an
//! expansion of `L` by a factor `V = (V_1, …, V_d)`, every guest node
//! `(i_1, …, i_d)` is mapped through one basic sequence per dimension and the
//! results are concatenated:
//!
//! * `F_V` uses `f_{V_i}` — mesh guests, dilation 1;
//! * `G_V` uses `g_{V_i}` — torus guests into mesh hosts, dilation 2;
//! * `H_V` uses `h_{V_i}` — torus guests into torus hosts (dilation 1), and
//!   torus guests of even size into mesh hosts when every `V_i` has at least
//!   two components with an even first component (dilation 1).
//!
//! A final dimension permutation `π` (with `π(V) = M`) rearranges the host
//! coordinates into the host's own dimension order.

use std::sync::Arc;

use mixedradix::{Digits, Permutation};
use topology::{Coord, Grid, Shape};

use crate::basic::{f_l, g_l, h_l};
use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};
use crate::expansion::{find_expansion_factor, find_expansion_factor_even_first, ExpansionFactor};

/// Which per-dimension basic sequence an increasing-dimension embedding uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncreaseFunction {
    /// `F_V`: per-dimension `f_{V_i}` (guest read as a mesh).
    F,
    /// `G_V`: per-dimension `g_{V_i}` (torus guest, mesh host, dilation 2).
    G,
    /// `H_V`: per-dimension `h_{V_i}` (torus guest; unit dilation cases).
    H,
}

impl IncreaseFunction {
    /// The paper's name for the composed map.
    pub fn name(self) -> &'static str {
        match self {
            IncreaseFunction::F => "π ∘ F_V",
            IncreaseFunction::G => "π ∘ G_V",
            IncreaseFunction::H => "π ∘ H_V",
        }
    }
}

/// Builds the per-dimension sub-shapes `V_1, …, V_d` of an expansion factor,
/// one [`Shape`] (with its radix weights and reciprocal constants) per list.
///
/// Embedding map closures run once per guest node; constructing these shapes
/// there would redo a heap allocation and a divider computation per dimension
/// per node. Build them once and evaluate with [`map_increase_over`].
pub fn factor_shapes(factor: &ExpansionFactor) -> Vec<Shape> {
    factor
        .lists()
        .iter()
        .map(|list| Shape::new(list.clone()).expect("factor lists are valid shapes"))
        .collect()
}

/// Evaluates `F_V`, `G_V` or `H_V` (Definition 31) on a guest coordinate,
/// producing a coordinate of the intermediate graph `H'` of shape
/// `V_1 ∘ V_2 ∘ … ∘ V_d`.
///
/// # Panics
///
/// Panics if the coordinate's dimension differs from the factor's list count
/// or a digit is out of range for its sub-shape.
pub fn map_increase(factor: &ExpansionFactor, function: IncreaseFunction, coord: &Coord) -> Digits {
    map_increase_over(&factor_shapes(factor), function, coord)
}

/// [`map_increase`] over sub-shapes prepared by [`factor_shapes`] — the
/// allocation-free form hot loops call per node.
///
/// # Panics
///
/// Panics if the coordinate's dimension differs from the sub-shape count or a
/// digit is out of range for its sub-shape.
pub fn map_increase_over(subs: &[Shape], function: IncreaseFunction, coord: &Coord) -> Digits {
    assert_eq!(
        coord.dim(),
        subs.len(),
        "coordinate dimension must match the expansion factor"
    );
    let mut out = Digits::empty();
    for (i, sub) in subs.iter().enumerate() {
        let digit = coord.get(i) as u64;
        let image = match function {
            IncreaseFunction::F => f_l(sub, digit),
            IncreaseFunction::G => g_l(sub, digit),
            IncreaseFunction::H => h_l(sub, digit),
        };
        out = out.concat(&image).expect("total dimension within bounds");
    }
    out
}

/// Embeds `guest` in `host` with an explicitly chosen expansion factor and
/// per-dimension function.
///
/// # Errors
///
/// Returns an error if the factor is not a valid expansion factor of the
/// guest's shape into the host's shape.
pub fn embed_increasing_with(
    guest: &Grid,
    host: &Grid,
    factor: &ExpansionFactor,
    function: IncreaseFunction,
) -> Result<Embedding> {
    factor.validate(guest.shape(), host.shape())?;
    let perm: Permutation = factor.permutation_to(host.shape())?;
    let guest_shape = guest.shape().clone();
    let subs = factor_shapes(factor);
    let map = match increase_tables(&guest_shape, &subs, function, &perm) {
        Some(tables) => {
            // Table-driven fast path: the map is separable per guest
            // dimension, so the per-node work collapses to a scalar decode,
            // one table load per dimension and a disjoint-position merge.
            let mover: Arc<dyn Fn(u64) -> Digits + Send + Sync> = Arc::new(move |x| {
                let coord = guest_shape.to_digits(x).expect("index in range");
                let mut out = tables[0][coord.get(0) as usize];
                for (i, table) in tables.iter().enumerate().skip(1) {
                    let partial = &table[coord.get(i) as usize];
                    for j in 0..out.dim() {
                        out.set(j, out.get(j) | partial.get(j));
                    }
                }
                out
            });
            mover
        }
        None => Arc::new(move |x| {
            let coord = guest_shape.to_digits(x).expect("index in range");
            let image = map_increase_over(&subs, function, &coord);
            perm.apply_digits(&image)
                .expect("permutation matches dimension")
        }),
    };
    Embedding::new(guest.clone(), host.clone(), function.name(), map)
}

/// Guest radices beyond which [`increase_tables`] declines to tabulate: the
/// tables hold `Σ l_i` [`Digits`] entries, and past this bound the per-node
/// lookups stop fitting in cache while construction cost starts to show.
const TABLE_ENTRY_LIMIT: u64 = 1 << 12;

/// Precomputes, for every guest dimension `i` and digit `v < l_i`, the
/// permuted partial image of `v` — a host coordinate with dimension `i`'s
/// sub-image spread over its final (post-`π`) positions and zeros elsewhere.
/// Because `F_V`/`G_V`/`H_V` act dimension-by-dimension and `π` only moves
/// positions, the full image of a coordinate is the digit-wise merge of one
/// partial per dimension (their nonzero positions are disjoint).
///
/// Returns `None` when the guest's radices sum past [`TABLE_ENTRY_LIMIT`];
/// callers then fall back to evaluating [`map_increase_over`] per node.
fn increase_tables(
    guest_shape: &Shape,
    subs: &[Shape],
    function: IncreaseFunction,
    perm: &Permutation,
) -> Option<Vec<Vec<Digits>>> {
    let entries: u64 = guest_shape.radices().iter().map(|&l| l as u64).sum();
    if entries > TABLE_ENTRY_LIMIT {
        return None;
    }
    let c = perm.len();
    // Recover π's position map by pushing the identity through it:
    // host position j reads concatenated position π(j).
    let identity: Vec<usize> = (0..c).collect();
    let positions = perm.apply_slice(&identity).expect("lengths match");
    let mut host_position = vec![0usize; c];
    for (j, &p) in positions.iter().enumerate() {
        host_position[p] = j;
    }
    let mut tables = Vec::with_capacity(subs.len());
    let mut offset = 0usize;
    for (i, sub) in subs.iter().enumerate() {
        let l = guest_shape.radix(i) as u64;
        let mut table = Vec::with_capacity(l as usize);
        for v in 0..l {
            let image = match function {
                IncreaseFunction::F => f_l(sub, v),
                IncreaseFunction::G => g_l(sub, v),
                IncreaseFunction::H => h_l(sub, v),
            };
            let mut partial = Digits::zero(c).expect("host dimension within bounds");
            for k in 0..sub.dim() {
                partial.set(host_position[offset + k], image.get(k));
            }
            table.push(partial);
        }
        offset += sub.dim();
        tables.push(table);
    }
    Some(tables)
}

/// The dilation cost Theorem 32 guarantees for [`embed_increasing`], or an
/// error if the shapes do not satisfy the condition of expansion.
pub fn predicted_dilation_increasing(guest: &Grid, host: &Grid) -> Result<u64> {
    plan_increasing(guest, host).map(|(_, _, dilation)| dilation)
}

/// Embeds `guest` in `host` for the increasing-dimension case (Theorem 32),
/// choosing the function and factor the paper prescribes:
///
/// * guest mesh → `π ∘ F_V`, dilation 1 (optimal);
/// * guest torus, host torus → `π ∘ H_V`, dilation 1 (optimal);
/// * guest torus, host mesh → `π ∘ H_V` with an even-first factor when the
///   guest has even size and such a factor exists (dilation 1, optimal);
///   otherwise `π ∘ G_V`, dilation 2 (optimal whenever the guest has odd
///   size).
///
/// # Errors
///
/// Returns [`EmbeddingError::ConditionNotSatisfied`] if the host's shape is
/// not an expansion of the guest's shape, and [`EmbeddingError::SizeMismatch`]
/// if the sizes differ.
pub fn embed_increasing(guest: &Grid, host: &Grid) -> Result<Embedding> {
    let (factor, function, _) = plan_increasing(guest, host)?;
    embed_increasing_with(guest, host, &factor, function)
}

fn plan_increasing(guest: &Grid, host: &Grid) -> Result<(ExpansionFactor, IncreaseFunction, u64)> {
    if guest.size() != host.size() {
        return Err(EmbeddingError::SizeMismatch {
            guest: guest.size(),
            host: host.size(),
        });
    }
    if guest.dim() >= host.dim() {
        return Err(EmbeddingError::Unsupported {
            details: format!(
                "increasing-dimension embedding needs dim G < dim H, got {} and {}",
                guest.dim(),
                host.dim()
            ),
        });
    }
    let base_factor = find_expansion_factor(guest.shape(), host.shape()).ok_or(
        EmbeddingError::ConditionNotSatisfied {
            condition: "expansion",
            details: format!("{} is not an expansion of {}", host.shape(), guest.shape()),
        },
    )?;
    if guest.is_mesh() {
        return Ok((base_factor, IncreaseFunction::F, 1));
    }
    if host.is_torus() {
        return Ok((base_factor, IncreaseFunction::H, 1));
    }
    // Torus guest, mesh host.
    if guest.size().is_multiple_of(2) {
        if let Some(even_factor) = find_expansion_factor_even_first(guest.shape(), host.shape()) {
            return Ok((even_factor, IncreaseFunction::H, 1));
        }
    }
    Ok((base_factor, IncreaseFunction::G, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn check(guest: Grid, host: Grid, expected_dilation: u64) {
        let e = embed_increasing(&guest, &host).unwrap();
        assert!(e.is_injective(), "injective: {guest} -> {host}");
        assert_eq!(
            e.dilation(),
            expected_dilation,
            "dilation of {} for {guest} -> {host}",
            e.name()
        );
        assert_eq!(
            predicted_dilation_increasing(&guest, &host).unwrap(),
            expected_dilation
        );
    }

    #[test]
    fn theorem_32_i_mesh_guests_unit_dilation() {
        check(
            Grid::mesh(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
            1,
        );
        check(
            Grid::mesh(shape(&[4, 6])),
            Grid::torus(shape(&[2, 2, 2, 3])),
            1,
        );
        check(
            Grid::mesh(shape(&[8, 9])),
            Grid::mesh(shape(&[2, 4, 3, 3])),
            1,
        );
        check(Grid::mesh(shape(&[12])), Grid::torus(shape(&[3, 4])), 1);
        check(
            Grid::mesh(shape(&[6, 6])),
            Grid::mesh(shape(&[2, 3, 3, 2])),
            1,
        );
    }

    #[test]
    fn theorem_32_ii_torus_into_torus_unit_dilation() {
        check(
            Grid::torus(shape(&[4, 6])),
            Grid::torus(shape(&[2, 2, 2, 3])),
            1,
        );
        check(
            Grid::torus(shape(&[9, 4])),
            Grid::torus(shape(&[3, 3, 2, 2])),
            1,
        );
        check(Grid::torus(shape(&[8])), Grid::torus(shape(&[2, 2, 2])), 1);
        check(
            Grid::torus(shape(&[15, 4])),
            Grid::torus(shape(&[3, 5, 4])),
            1,
        );
    }

    #[test]
    fn theorem_32_iii_even_torus_into_mesh_unit_dilation_with_even_factor() {
        // Each dimension of G has even length and the factor lists can be
        // chosen with at least two components and an even first component.
        check(
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
            1,
        );
        check(
            Grid::torus(shape(&[6, 12])),
            Grid::mesh(shape(&[6, 3, 2, 2])),
            1,
        );
        check(
            Grid::torus(shape(&[4, 4])),
            Grid::mesh(shape(&[2, 2, 2, 2])),
            1,
        );
    }

    #[test]
    fn theorem_32_iii_odd_torus_into_mesh_dilation_two() {
        check(
            Grid::torus(shape(&[9, 15])),
            Grid::mesh(shape(&[3, 3, 3, 5])),
            2,
        );
        check(Grid::torus(shape(&[9])), Grid::mesh(shape(&[3, 3])), 2);
        check(
            Grid::torus(shape(&[25, 3])),
            Grid::mesh(shape(&[5, 5, 3])),
            2,
        );
    }

    #[test]
    fn even_torus_without_even_factor_falls_back_to_dilation_two() {
        // G = (2, 8): the dimension of length 2 cannot receive a factor list
        // with two components, so H_V is unavailable and G_V's dilation 2 is
        // used.
        check(
            Grid::torus(shape(&[2, 8])),
            Grid::mesh(shape(&[2, 4, 2])),
            2,
        );
    }

    #[test]
    fn corollary_34_power_of_two_graphs_into_hypercubes() {
        for radices in [vec![4u32, 8], vec![2, 16], vec![8, 4, 2], vec![16, 4]] {
            let l = shape(&radices);
            let bits = (l.size() as f64).log2() as usize;
            let hypercube = Grid::hypercube(bits).unwrap();
            check(Grid::mesh(l.clone()), hypercube.clone(), 1);
            // Toruses of even size also embed with unit dilation: every
            // dimension of the hypercube factor has at least two binary
            // components when l_i >= 4; dimensions of length 2 are handled by
            // the torus=mesh coincidence on length-2 dimensions.
            let torus_dilation = embed_increasing(&Grid::torus(l.clone()), &hypercube)
                .unwrap()
                .dilation();
            assert!(
                torus_dilation <= 2,
                "torus {l} into hypercube dilated by {torus_dilation}"
            );
        }
    }

    #[test]
    fn figure_11_functions_for_l_4_6_into_2_2_2_3() {
        // Figure 11 tabulates F_V, G_V, H_V for L = (4,6), M = (2,2,2,3) with
        // V = ((2,2),(2,3)); here M = V_1 ∘ V_2 so π is the identity.
        let factor = ExpansionFactor::new(vec![vec![2, 2], vec![2, 3]]).unwrap();
        let guest_mesh = Grid::mesh(shape(&[4, 6]));
        let guest_torus = Grid::torus(shape(&[4, 6]));
        let host_mesh = Grid::mesh(shape(&[2, 2, 2, 3]));
        let host_torus = Grid::torus(shape(&[2, 2, 2, 3]));

        let f =
            embed_increasing_with(&guest_mesh, &host_mesh, &factor, IncreaseFunction::F).unwrap();
        let g =
            embed_increasing_with(&guest_torus, &host_mesh, &factor, IncreaseFunction::G).unwrap();
        let h =
            embed_increasing_with(&guest_torus, &host_torus, &factor, IncreaseFunction::H).unwrap();

        // Spot-check the map structure: node (1, 4) of G maps under F_V to
        // f_{(2,2)}(1) ∘ f_{(2,3)}(4) = (0,1) ∘ (1,1) = (0,1,1,1).
        let x = shape(&[4, 6])
            .to_index(&Digits::from_slice(&[1, 4]).unwrap())
            .unwrap();
        assert_eq!(f.map(x).as_slice(), &[0, 1, 1, 1]);

        assert_eq!(f.dilation(), 1);
        assert_eq!(h.dilation(), 1);
        assert_eq!(g.dilation(), 2);
        assert!(f.is_injective() && g.is_injective() && h.is_injective());
    }

    #[test]
    fn mismatched_sizes_and_dimensions_are_rejected() {
        let a = Grid::mesh(shape(&[4, 6]));
        let b = Grid::mesh(shape(&[2, 2, 2, 2]));
        assert!(matches!(
            embed_increasing(&a, &b),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
        let c = Grid::mesh(shape(&[2, 3, 4]));
        let d = Grid::mesh(shape(&[24]));
        assert!(embed_increasing(&c, &d).is_err());
        // Shapes of equal size that do not satisfy expansion.
        let e = Grid::mesh(shape(&[6, 6]));
        let f = Grid::mesh(shape(&[4, 3, 3]));
        assert!(matches!(
            embed_increasing(&e, &f),
            Err(EmbeddingError::ConditionNotSatisfied { .. })
        ));
    }

    #[test]
    fn factor_choice_ablation_matches_the_papers_discussion() {
        // Section 4.1 discusses L = (6,12), M = (6,3,2,2): the expansion
        // factor ((6),(3,2,2)) yields dilation 2 for a torus guest in a mesh
        // host, while ((2,3),(6,2)) reaches dilation 1. Reproduce both.
        let guest = Grid::torus(shape(&[6, 12]));
        let host = Grid::mesh(shape(&[6, 3, 2, 2]));

        let bad_factor = ExpansionFactor::new(vec![vec![6], vec![3, 2, 2]]).unwrap();
        let bad = embed_increasing_with(&guest, &host, &bad_factor, IncreaseFunction::G).unwrap();
        assert!(bad.is_injective());
        assert_eq!(bad.dilation(), 2);

        let good_factor = ExpansionFactor::new(vec![vec![2, 3], vec![6, 2]]).unwrap();
        let good = embed_increasing_with(&guest, &host, &good_factor, IncreaseFunction::H).unwrap();
        assert!(good.is_injective());
        assert_eq!(good.dilation(), 1);

        // The planner picks the good factor automatically.
        assert_eq!(embed_increasing(&guest, &host).unwrap().dilation(), 1);
    }

    #[test]
    fn explicit_factor_is_validated() {
        let guest = Grid::mesh(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[2, 2, 2, 3]));
        let bad = ExpansionFactor::new(vec![vec![2, 3], vec![2, 2]]).unwrap();
        assert!(embed_increasing_with(&guest, &host, &bad, IncreaseFunction::F).is_err());
    }
}
