//! Local-search refinement of embeddings: seeded simulated annealing over
//! placement tables under pluggable, incrementally-evaluated objectives.
//!
//! The paper's constructions carry worst-case dilation guarantees, but a
//! measured objective — the congestion of the busiest link, the average
//! dilation, the weighted wirelength, or a simulated makespan — often leaves
//! headroom below the analytic bound. This module closes that gap the way
//! wirelength-minimizing embedders do: start from any [`Embedding`]
//! (paper-constructive or random), materialize its placement table, and
//! refine the table with permutation moves.
//!
//! Four objectives ship with the repo — see the "Objective catalog" section
//! of ARCHITECTURE.md for the state/delta-cost/invariant summary of each:
//!
//! | objective | primary cost | tie-breaker |
//! |---|---|---|
//! | [`CongestionObjective`] | max link congestion (DOR) | total routed path length |
//! | [`DilationObjective`] | total host distance over guest edges | max per-edge distance |
//! | [`WirelengthObjective`] | **weighted** total route length | max per-edge distance |
//! | `netsim::optimize::MakespanObjective` | simulated makespan | total routed path length |
//!
//! The unit-weight wirelength objective doubles as the annealing target for
//! Tang's exact hypercube → torus minimum-wirelength bound
//! ([`crate::lower_bound::wirelength_lower_bound`]), the repo's first
//! cross-paper result (EXPERIMENTS.md Table 11).
//!
//! # Architecture
//!
//! * [`Objective`] — the pluggable cost model. An objective owns whatever
//!   incremental state it needs (for congestion: the flat per-link load
//!   vector of [`crate::congestion`], plus a load-value histogram so the
//!   maximum is maintained under ±1 updates). [`Objective::rebuild`] does a
//!   full sweep; [`Objective::apply_swap`] updates the state for one
//!   transposition in `O(degree × path length)` instead of re-sweeping every
//!   guest edge.
//! * [`Cost`] — a lexicographic `(primary, secondary)` pair, so "max link
//!   congestion, ties broken by total routed path length" is one totally
//!   ordered value.
//! * [`Optimizer`] — deterministic, seeded simulated annealing with a
//!   pluggable move repertoire weighted by a [`MoveMix`]: **swap**
//!   (transpose the images of two guest nodes), **segment reversal**
//!   (reverse a short run of the table), **k-cycle rotation** (rotate a
//!   short run left by one), and **dimension-aligned block swap** (exchange
//!   two whole hyperplanes of the guest). Every compound move decomposes
//!   into batches of disjoint transpositions pushed through
//!   [`Objective::apply_disjoint_swaps`], so all four kinds share one
//!   incremental-delta path; see the "Move repertoire" catalog in
//!   ARCHITECTURE.md for each kind's decomposition and inverse. The best
//!   table ever visited is tracked and returned, which makes the final
//!   result monotonically no worse than the starting embedding regardless
//!   of the annealing temperature.
//!
//! Every move is a permutation of an (injective) table, so every intermediate
//! table stays bijective; accepted and rejected moves alike keep the
//! objective's incremental state exactly in sync with the table (rejection
//! undoes the move by applying the involution again, or the inverse rotation
//! for a k-cycle).
//!
//! The [`parallel`] submodule runs N independently-seeded copies of this
//! walk on the `topology::parallel` fork–join pool and reduces to the
//! lexicographically best `(cost, seed, shard)` result — deterministic for
//! any worker count. Under
//! [`ShardStrategy::Portfolio`](parallel::ShardStrategy::Portfolio) the
//! shards additionally diversify their move mixes and temperature schedules
//! instead of only their seeds.
//!
//! # The `same_shape` plateau, resolved
//!
//! Under the congestion objective, every torus-into-identical-shape-mesh
//! trial (`same_shape` in explab) ends with `best == initial` — the report
//! sweep's historical "85 of 85 stuck" plateau. An earlier revision of this
//! module read that as a repertoire limitation; it is actually a proof of
//! optimality. Each torus ring of radix `l` must cross each of the `l - 1`
//! mesh line cuts orthogonal to it at least **twice** (a cycle that leaves a
//! cut must re-enter it), and the constructive embedding achieves exactly
//! two crossings per cut — simultaneously minimizing the max-congestion
//! primary and the total-path-length secondary. No move repertoire can beat
//! a global optimum, and the richer moves confirm it: k-cycle rotations and
//! block swaps also leave the constructive cost untouched on all 85 pairs.
//!
//! Where the compound repertoire *does* pay off is away from the
//! constructive start: pairwise-only annealing from shuffled tables sticks
//! at local optima, and the same seed and schedule with
//! [`MoveMix::compound`] strictly beats it on a pinned fraction of the
//! family. The `kcycle_moves_escape_plateaus_pairwise_moves_cannot` test
//! pins both halves — the lower-bound plateau and the shuffled-start
//! escape — so any repertoire change has a regression target.
//!
//! # Example
//!
//! ```
//! use embeddings::auto::embed;
//! use embeddings::optim::{CongestionObjective, Optimizer, OptimizerConfig};
//! use topology::{Grid, Shape};
//!
//! let guest = Grid::torus(Shape::new(vec![4, 6]).unwrap());
//! let host = Grid::mesh(Shape::new(vec![2, 2, 2, 3]).unwrap());
//! let constructive = embed(&guest, &host).unwrap();
//!
//! let mut objective = CongestionObjective::new(&guest, &host).unwrap();
//! let config = OptimizerConfig { seed: 7, steps: 400, ..OptimizerConfig::default() };
//! let outcome = Optimizer::new(config).optimize(&constructive, &mut objective).unwrap();
//! // The refined placement is never worse than the construction it started from.
//! assert!(outcome.report.best <= outcome.report.initial);
//! assert!(outcome.embedding.is_injective());
//! ```

pub mod parallel;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::routing::{for_each_hop, link_slot_of_hop};
use topology::{Coord, Grid, Shape};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// A lexicographic optimization cost: `primary` dominates, `secondary`
/// breaks ties. The derived ordering compares `primary` first (field order),
/// so e.g. "minimize max congestion, then total path length" is one ordered
/// value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cost {
    /// The dominant term (e.g. max link congestion).
    pub primary: u64,
    /// The tie-breaking term (e.g. total routed path length).
    pub secondary: u64,
}

impl Cost {
    /// Scalarizes the cost for annealing acceptance: the primary term is
    /// weighted so one unit of it dominates any realistic secondary change.
    fn scalar(self, primary_weight: f64) -> f64 {
        self.primary as f64 * primary_weight + self.secondary as f64
    }
}

/// A pluggable, incrementally-evaluated objective over placement tables.
///
/// A table maps guest node index → host node index and is always a
/// permutation of `0..n`. Implementations keep whatever internal state makes
/// [`Objective::apply_swap`] cheap; [`Objective::rebuild`] recomputes that
/// state from scratch and is the differential-testing anchor: after any
/// sequence of `apply_swap` calls, `rebuild` on the same table must return
/// the same cost the incremental path reported.
pub trait Objective {
    /// The objective's name, used in reports (`"congestion"`, `"dilation"`,
    /// `"wirelength"`, `"makespan"`).
    fn name(&self) -> &'static str;

    /// Rebuilds all internal state for `table` with a full sweep and returns
    /// its cost.
    fn rebuild(&mut self, table: &[u64]) -> Cost;

    /// Updates the internal state for the transposition of the images of
    /// guest nodes `a` and `b`, and returns the new cost. `table` is the
    /// table *after* the swap; the pre-swap images are therefore
    /// `table[b]`/`table[a]`. Calling `apply_swap` twice with the same pair
    /// is a no-op (swaps are involutions), which is how rejected moves are
    /// undone.
    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost;

    /// Applies a compound move — a sequence of *pairwise-disjoint*
    /// transpositions (a segment reversal) — performing the swaps on
    /// `table` itself, and returns the cost of the final table. Disjoint
    /// transpositions commute, so re-applying the same sequence undoes the
    /// move exactly (the involution contract the optimizer's rejection path
    /// relies on).
    ///
    /// The default implementation applies one [`Objective::apply_swap`] at
    /// a time, which is right for objectives whose evaluation is itself
    /// incremental (congestion, dilation). Objectives that end every update
    /// with an expensive global phase — the makespan objective re-arbitrates
    /// the whole schedule — override this to update per-swap state for all
    /// transpositions but pay the global phase once.
    fn apply_disjoint_swaps(&mut self, table: &mut [u64], swaps: &[(u64, u64)]) -> Cost {
        let mut cost = None;
        for &(a, b) in swaps {
            table.swap(a as usize, b as usize);
            cost = Some(self.apply_swap(table, a, b));
        }
        // An empty compound move changes nothing; re-deriving the cost from
        // scratch keeps the contract total without a cached-cost requirement.
        cost.unwrap_or_else(|| self.rebuild(table))
    }
}

impl<T: Objective + ?Sized> Objective for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        (**self).rebuild(table)
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        (**self).apply_swap(table, a, b)
    }

    fn apply_disjoint_swaps(&mut self, table: &mut [u64], swaps: &[(u64, u64)]) -> Cost {
        (**self).apply_disjoint_swaps(table, swaps)
    }
}

/// A histogram over `u64` values that maintains the current maximum under
/// single-value increments/decrements — the piece that makes "max link
/// congestion" an incrementally evaluable objective.
#[derive(Clone, Debug, Default)]
struct MaxTracker {
    /// `count[v]` = number of tracked slots currently holding value `v`
    /// (value 0 is untracked; empty links don't matter to the maximum).
    count: Vec<u64>,
    max: u64,
}

impl MaxTracker {
    fn clear(&mut self) {
        self.count.clear();
        self.max = 0;
    }

    /// Records a slot moving from value `from` to value `from + 1`.
    fn increment(&mut self, from: u64) {
        let to = from + 1;
        if self.count.len() <= to as usize {
            self.count.resize(to as usize + 1, 0);
        }
        if from > 0 {
            self.count[from as usize] -= 1;
        }
        self.count[to as usize] += 1;
        if to > self.max {
            self.max = to;
        }
    }

    /// Records a slot moving from value `from` to value `from - 1`.
    fn decrement(&mut self, from: u64) {
        debug_assert!(from > 0, "cannot decrement an empty slot");
        self.count[from as usize] -= 1;
        if from > 1 {
            self.count[from as usize - 1] += 1;
        }
        while self.max > 0 && self.count[self.max as usize] == 0 {
            self.max -= 1;
        }
    }
}

/// Appends every guest edge incident to node `x` to `out`, each in the
/// *canonical orientation* of [`Grid::edges`] (the enumeration behind the
/// full congestion sweep): the tail is the endpoint whose coordinate steps
/// `+1` along the edge's dimension, and torus wrap edges run from the
/// highest coordinate back to 0. Routing dimension-ordered paths is
/// orientation-sensitive, so incremental updates must route each edge in
/// the same direction the full sweep did. One entry per incident edge —
/// length-2 torus dimensions contribute a single edge. The scratch-vector
/// pattern keeps swap evaluation allocation-free after warm-up.
fn incident_edges_into(guest: &Grid, x: u64, out: &mut Vec<(u64, u64)>) {
    let shape = guest.shape();
    let coord = guest.coord(x).expect("node in range");
    for j in 0..shape.dim() {
        let l = shape.radix(j);
        if l < 2 {
            continue;
        }
        let i = coord.get(j);
        let w = shape.weight(j + 1);
        if guest.is_torus() {
            if l == 2 {
                // One physical edge, enumerated from the coordinate-0 end.
                if i == 0 {
                    out.push((x, x + w));
                } else {
                    out.push((x - w, x));
                }
                continue;
            }
            // Forward edge (x is the tail; wraps at the top coordinate).
            if i + 1 == l {
                out.push((x, x - (l as u64 - 1) * w));
            } else {
                out.push((x, x + w));
            }
            // Backward edge (the predecessor is the tail; the predecessor
            // of coordinate 0 is the wrap edge's top end).
            if i == 0 {
                out.push((x + (l as u64 - 1) * w, x));
            } else {
                out.push((x - w, x));
            }
        } else {
            if i + 1 < l {
                out.push((x, x + w));
            }
            if i > 0 {
                out.push((x - w, x));
            }
        }
    }
}

/// Visits every guest edge affected by the transposition of the images of
/// guest nodes `a` and `b`, calling
/// `update(tail, head, pre_tail, pre_head, post_tail, post_head)` once per
/// edge with the edge's *guest* endpoints followed by its endpoint *images*
/// before and after the swap, all in the canonical tail → head orientation
/// of [`Grid::edges`]. The guest endpoints are what weighted objectives key
/// per-edge weights on — they are invariant under the swap. `table` is the
/// table after the swap; `scratch` is a caller-owned buffer so the walk is
/// allocation-free after warm-up.
///
/// This is the one place that knows which edges a swap touches — in
/// particular that an edge between `a` and `b` themselves appears in both
/// incident lists and must be updated exactly once (the `a` pivot skips it,
/// the `b` pivot handles it). Every incremental objective defers to it.
fn for_each_affected_edge(
    guest: &Grid,
    scratch: &mut Vec<(u64, u64)>,
    table: &[u64],
    a: u64,
    b: u64,
    mut update: impl FnMut(u64, u64, u64, u64, u64, u64),
) {
    // The images of `a` and `b` were exchanged, everything else is
    // unchanged, so the pre-swap image of `a` is `table[b]` and vice versa.
    let (fa, fb) = (table[a as usize], table[b as usize]);
    let pre = move |x: u64| -> u64 {
        if x == a {
            fb
        } else if x == b {
            fa
        } else {
            table[x as usize]
        }
    };
    for (node, skip_peer) in [(a, Some(b)), (b, None::<u64>)] {
        scratch.clear();
        incident_edges_into(guest, node, scratch);
        for &(tail, head) in scratch.iter() {
            let other = if tail == node { head } else { tail };
            if Some(other) == skip_peer {
                continue;
            }
            update(
                tail,
                head,
                pre(tail),
                pre(head),
                table[tail as usize],
                table[head as usize],
            );
        }
    }
}

/// Minimize the maximum link congestion under dimension-ordered routing
/// (ties broken by total routed path length).
///
/// State: the same flat per-link load vector as
/// [`crate::congestion::congestion`] (indexed by [`Grid::link_index`]) plus
/// a `MaxTracker` histogram of load values, so a swap re-routes only the
/// `O(degree)` guest edges incident to the swapped nodes and the maximum is
/// maintained without scanning the load vector.
pub struct CongestionObjective {
    guest: Grid,
    host: Grid,
    dims: Vec<usize>,
    loads: Vec<u64>,
    tracker: MaxTracker,
    total_path_length: u64,
    /// Scratch coordinates reused by every routed edge.
    current: Coord,
    target: Coord,
    /// Scratch incident-edge buffer reused by every swap evaluation.
    scratch: Vec<(u64, u64)>,
    /// Scratch (pre-from, pre-to, post-from, post-to) update list.
    updates: Vec<(u64, u64, u64, u64)>,
}

impl CongestionObjective {
    /// Creates the objective for a guest/host pair.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SizeMismatch`] if the graphs differ in size,
    /// and [`EmbeddingError::TooLarge`] if the host's dense link index space
    /// `d · n` does not fit the flat load vector (the unchecked count would
    /// silently wrap and under-allocate).
    pub fn new(guest: &Grid, host: &Grid) -> Result<Self> {
        if guest.size() != host.size() {
            return Err(EmbeddingError::SizeMismatch {
                guest: guest.size(),
                host: host.size(),
            });
        }
        const LINK_LIMIT: u64 = 1 << 29;
        let links = host.try_link_count().unwrap_or(u64::MAX);
        if links > LINK_LIMIT {
            return Err(EmbeddingError::TooLarge {
                size: links,
                limit: LINK_LIMIT,
            });
        }
        Ok(CongestionObjective {
            guest: guest.clone(),
            host: host.clone(),
            dims: (0..host.dim()).collect(),
            loads: vec![0; links as usize],
            tracker: MaxTracker::default(),
            total_path_length: 0,
            current: Coord::empty(),
            target: Coord::empty(),
            scratch: Vec::new(),
            updates: Vec::new(),
        })
    }

    /// Routes `from → to` and applies `±1` to every traversed link.
    fn route(&mut self, from: u64, to: u64, add: bool) {
        // Destructure to split the borrows: the route expansion reads
        // host/current/target/dims while the hop callback mutates
        // loads/tracker/total_path_length.
        let CongestionObjective {
            host,
            dims,
            loads,
            tracker,
            total_path_length,
            current,
            target,
            ..
        } = self;
        host.shape()
            .to_digits_into(from, current)
            .expect("host node");
        host.shape().to_digits_into(to, target).expect("host node");
        for_each_hop(host, current, from, target, dims, |hop, before, after| {
            let slot = link_slot_of_hop(host, hop, before, after) as usize;
            if add {
                tracker.increment(loads[slot]);
                loads[slot] += 1;
                *total_path_length += 1;
            } else {
                tracker.decrement(loads[slot]);
                loads[slot] -= 1;
                *total_path_length -= 1;
            }
        });
    }

    fn cost(&self) -> Cost {
        Cost {
            primary: self.tracker.max,
            secondary: self.total_path_length,
        }
    }
}

impl Objective for CongestionObjective {
    fn name(&self) -> &'static str {
        "congestion"
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        self.loads.iter_mut().for_each(|l| *l = 0);
        self.tracker.clear();
        self.total_path_length = 0;
        let guest = self.guest.clone();
        for (x, y) in guest.edges() {
            self.route(table[x as usize], table[y as usize], true);
        }
        self.cost()
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        if a == b {
            return self.cost();
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut updates = std::mem::take(&mut self.updates);
        updates.clear();
        for_each_affected_edge(
            &self.guest,
            &mut scratch,
            table,
            a,
            b,
            |_, _, pf, pt, nf, nt| {
                updates.push((pf, pt, nf, nt));
            },
        );
        for &(pre_from, pre_to, post_from, post_to) in &updates {
            // Remove the pre-swap route, add the post-swap route — both in
            // the canonical tail → head orientation the full sweep uses.
            self.route(pre_from, pre_to, false);
            self.route(post_from, post_to, true);
        }
        self.scratch = scratch;
        self.updates = updates;
        self.cost()
    }
}

/// Minimize the total routed path length (equivalently the average dilation,
/// whose denominator — the guest edge count — is constant), with the maximum
/// per-edge dilation as the tie-breaker.
///
/// No per-edge state is needed: the pre-swap distance of every affected edge
/// is recomputed from the pre-swap images, so a swap costs `O(degree)`
/// distance evaluations.
pub struct DilationObjective {
    guest: Grid,
    host: Grid,
    tracker: MaxTracker,
    total: u64,
    /// Scratch incident-edge buffer reused by every swap evaluation.
    scratch: Vec<(u64, u64)>,
    /// Scratch (pre-from, pre-to, post-from, post-to) update list.
    updates: Vec<(u64, u64, u64, u64)>,
}

impl DilationObjective {
    /// Creates the objective for a guest/host pair.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SizeMismatch`] if the graphs differ in size.
    pub fn new(guest: &Grid, host: &Grid) -> Result<Self> {
        if guest.size() != host.size() {
            return Err(EmbeddingError::SizeMismatch {
                guest: guest.size(),
                host: host.size(),
            });
        }
        Ok(DilationObjective {
            guest: guest.clone(),
            host: host.clone(),
            tracker: MaxTracker::default(),
            total: 0,
            scratch: Vec::new(),
            updates: Vec::new(),
        })
    }

    fn distance(&self, from: u64, to: u64) -> u64 {
        self.host
            .distance_index(from, to)
            .expect("table entries are host nodes")
    }

    fn add_edge(&mut self, d: u64) {
        // increment(v) moves one slot from v to v+1, so the sequence below
        // is exactly one slot walking 0 → d: the intermediate counts
        // cancel and only the final distance remains tracked.
        for v in 0..d {
            self.tracker.increment(v);
        }
        self.total += d;
    }

    fn remove_edge(&mut self, d: u64) {
        for v in (1..=d).rev() {
            self.tracker.decrement(v);
        }
        self.total -= d;
    }

    fn cost(&self) -> Cost {
        Cost {
            primary: self.total,
            secondary: self.tracker.max,
        }
    }
}

impl Objective for DilationObjective {
    fn name(&self) -> &'static str {
        "dilation"
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        self.tracker.clear();
        self.total = 0;
        let guest = self.guest.clone();
        for (x, y) in guest.edges() {
            let d = self.distance(table[x as usize], table[y as usize]);
            self.add_edge(d);
        }
        self.cost()
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        if a == b {
            return self.cost();
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut updates = std::mem::take(&mut self.updates);
        updates.clear();
        for_each_affected_edge(
            &self.guest,
            &mut scratch,
            table,
            a,
            b,
            |_, _, pf, pt, nf, nt| {
                updates.push((pf, pt, nf, nt));
            },
        );
        for &(pre_from, pre_to, post_from, post_to) in &updates {
            let old = self.distance(pre_from, pre_to);
            let new = self.distance(post_from, post_to);
            self.remove_edge(old);
            self.add_edge(new);
        }
        self.scratch = scratch;
        self.updates = updates;
        self.cost()
    }
}

/// Minimize the **wirelength** — the sum of weighted route lengths over
/// guest edges — with the maximum per-edge host distance as the tie-breaker.
///
/// Under dimension-ordered routing every route is a shortest path, so each
/// edge's route length equals the host distance of its endpoint images and
/// the unit-weight wirelength coincides with [`DilationObjective`]'s total.
/// The objective earns its keep in two ways: per-guest-edge *weights*
/// ([`WirelengthObjective::with_weights`]) let hot guest edges count more
/// than cold ones, and the unit-weight total is exactly the quantity Tang's
/// closed form bounds from below
/// ([`crate::lower_bound::wirelength_lower_bound`]) — the repo's second
/// analytic optimization target after the paper's dilation predictions.
///
/// State: the weighted total plus a `MaxTracker` histogram of *unweighted*
/// per-edge distances (tracking weighted contributions would size the
/// histogram by the largest weight). A swap re-measures only the
/// `O(degree)` guest edges incident to the swapped nodes, via the same
/// affected-edge walk the other incremental objectives use; the guest
/// endpoints it reports key the weight lookup.
///
/// # Example
///
/// Anneal the constructive hypercube → ring embedding of `Q₃` toward Tang's
/// exact minimum-wirelength bound:
///
/// ```
/// use embeddings::auto::embed;
/// use embeddings::lower_bound::wirelength_lower_bound;
/// use embeddings::optim::{Optimizer, OptimizerConfig, WirelengthObjective};
/// use topology::Grid;
///
/// let guest = Grid::hypercube(3).unwrap();
/// let host = Grid::ring(8).unwrap(); // the (8)-torus
/// let constructive = embed(&guest, &host).unwrap();
///
/// let mut objective = WirelengthObjective::new(&guest, &host).unwrap();
/// let config = OptimizerConfig { seed: 1987, steps: 1_500, ..OptimizerConfig::default() };
/// let outcome = Optimizer::new(config).optimize(&constructive, &mut objective).unwrap();
///
/// // Tang's closed form: embedding Q₃ in the cycle C₈ costs at least 20.
/// let bound = wirelength_lower_bound(&guest, &host).unwrap();
/// assert_eq!(bound, 20);
/// assert!(outcome.report.best <= outcome.report.initial);
/// assert!(outcome.report.best.primary >= bound);
/// ```
pub struct WirelengthObjective {
    guest: Grid,
    host: Grid,
    /// Per-guest-edge weights keyed by the canonical `(tail, head)`
    /// orientation of [`Grid::edges`]; `None` means every edge weighs 1 and
    /// skips the lookup entirely.
    weights: Option<std::collections::HashMap<(u64, u64), u64>>,
    tracker: MaxTracker,
    total: u64,
    /// Scratch incident-edge buffer reused by every swap evaluation.
    scratch: Vec<(u64, u64)>,
    /// Scratch (tail, head, pre-from, pre-to, post-from, post-to) update
    /// list — guest endpoints first, so the weight lookup happens outside
    /// the affected-edge walk's borrow of the scratch buffer.
    updates: Vec<(u64, u64, u64, u64, u64, u64)>,
}

impl WirelengthObjective {
    /// Creates the unit-weight objective for a guest/host pair: every guest
    /// edge counts its route length once, so the primary cost is the total
    /// routed path length — the quantity Tang's bound speaks about.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SizeMismatch`] if the graphs differ in size.
    pub fn new(guest: &Grid, host: &Grid) -> Result<Self> {
        Self::build(guest, host, None)
    }

    /// Creates the objective with a per-guest-edge weight function, evaluated
    /// once per canonical edge of [`Grid::edges`] (so `weight(tail, head)`
    /// sees each edge exactly once, in sweep orientation). Zero-weight edges
    /// are legal — they simply stop contributing to the primary cost, though
    /// they still participate in the max-distance tie-breaker.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::SizeMismatch`] if the graphs differ in size.
    pub fn with_weights(
        guest: &Grid,
        host: &Grid,
        mut weight: impl FnMut(u64, u64) -> u64,
    ) -> Result<Self> {
        let weights = guest
            .edges()
            .map(|(tail, head)| ((tail, head), weight(tail, head)))
            .collect();
        Self::build(guest, host, Some(weights))
    }

    fn build(
        guest: &Grid,
        host: &Grid,
        weights: Option<std::collections::HashMap<(u64, u64), u64>>,
    ) -> Result<Self> {
        if guest.size() != host.size() {
            return Err(EmbeddingError::SizeMismatch {
                guest: guest.size(),
                host: host.size(),
            });
        }
        Ok(WirelengthObjective {
            guest: guest.clone(),
            host: host.clone(),
            weights,
            tracker: MaxTracker::default(),
            total: 0,
            scratch: Vec::new(),
            updates: Vec::new(),
        })
    }

    fn weight(&self, tail: u64, head: u64) -> u64 {
        match &self.weights {
            None => 1,
            Some(map) => *map.get(&(tail, head)).unwrap_or(&1),
        }
    }

    fn distance(&self, from: u64, to: u64) -> u64 {
        self.host
            .distance_index(from, to)
            .expect("table entries are host nodes")
    }

    fn add_edge(&mut self, weight: u64, d: u64) {
        for v in 0..d {
            self.tracker.increment(v);
        }
        self.total += weight * d;
    }

    fn remove_edge(&mut self, weight: u64, d: u64) {
        for v in (1..=d).rev() {
            self.tracker.decrement(v);
        }
        self.total -= weight * d;
    }

    fn cost(&self) -> Cost {
        Cost {
            primary: self.total,
            secondary: self.tracker.max,
        }
    }
}

impl Objective for WirelengthObjective {
    fn name(&self) -> &'static str {
        "wirelength"
    }

    fn rebuild(&mut self, table: &[u64]) -> Cost {
        self.tracker.clear();
        self.total = 0;
        let guest = self.guest.clone();
        for (x, y) in guest.edges() {
            let w = self.weight(x, y);
            let d = self.distance(table[x as usize], table[y as usize]);
            self.add_edge(w, d);
        }
        self.cost()
    }

    fn apply_swap(&mut self, table: &[u64], a: u64, b: u64) -> Cost {
        if a == b {
            return self.cost();
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut updates = std::mem::take(&mut self.updates);
        updates.clear();
        for_each_affected_edge(
            &self.guest,
            &mut scratch,
            table,
            a,
            b,
            |t, h, pf, pt, nf, nt| {
                updates.push((t, h, pf, pt, nf, nt));
            },
        );
        self.scratch = scratch;
        for &(tail, head, pre_from, pre_to, post_from, post_to) in &updates {
            let w = self.weight(tail, head);
            let old = self.distance(pre_from, pre_to);
            let new = self.distance(post_from, post_to);
            self.remove_edge(w, old);
            self.add_edge(w, new);
        }
        self.updates = updates;
        self.cost()
    }
}

/// The move-repertoire weight table: how often the optimizer proposes each
/// compound move kind, in integer per-mille weights so configs stay
/// `Eq`-friendly and plan files can express them exactly. The pairwise swap
/// takes whatever remains of the 1000-per-mille budget, so the weights must
/// sum to at most 1000 ([`Optimizer::new`] asserts this).
///
/// See the module docs for the catalog: every kind is either an involution
/// (swap, reversal, block swap — re-apply to undo) or one half of an
/// explicit inverse pair (k-cycle rotation, undone by the opposite
/// rotation), and every kind reaches objectives through
/// [`Objective::apply_swap`] / [`Objective::apply_disjoint_swaps`] only, so
/// the incremental-vs-rebuild differential wall covers all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveMix {
    /// Per-mille weight of segment reversal (reverse a short run of the
    /// table — a single batch of disjoint transpositions).
    pub reverse_per_mille: u32,
    /// Per-mille weight of k-cycle rotation (rotate the images of a short
    /// run by one position — two disjoint-transposition batches).
    pub kcycle_per_mille: u32,
    /// Per-mille weight of dimension-aligned block swap (exchange the
    /// images of two parallel guest hyperplanes — a single batch of
    /// disjoint transpositions).
    pub block_per_mille: u32,
}

impl MoveMix {
    /// The historical swap + segment-reversal repertoire (the default):
    /// 250‰ reversals, 750‰ swaps, no compound structure moves. Proposals
    /// consume the RNG exactly as the pre-`MoveMix` optimizer did, so
    /// seeded runs reproduce bit for bit.
    pub const fn pairwise() -> MoveMix {
        MoveMix {
            reverse_per_mille: 250,
            kcycle_per_mille: 0,
            block_per_mille: 0,
        }
    }

    /// The full repertoire: reversals, k-cycle rotations and block swaps
    /// each get a real share of the proposal budget (600‰ swaps remain).
    pub const fn compound() -> MoveMix {
        MoveMix {
            reverse_per_mille: 150,
            kcycle_per_mille: 150,
            block_per_mille: 100,
        }
    }

    /// The summed per-mille weight of the non-swap kinds (≤ 1000; the swap
    /// takes the remainder).
    pub const fn total_per_mille(&self) -> u32 {
        self.reverse_per_mille + self.kcycle_per_mille + self.block_per_mille
    }
}

impl Default for MoveMix {
    fn default() -> Self {
        MoveMix::pairwise()
    }
}

/// Configuration of one optimization run. Everything is explicit so the run
/// is a pure function of `(embedding, objective, config)` — the same config
/// and seed always produce the same final table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimizerConfig {
    /// The RNG seed; runs are bit-identical per seed.
    pub seed: u64,
    /// The number of proposed moves.
    pub steps: u64,
    /// The starting annealing temperature (in units of normalized cost).
    pub initial_temperature: f64,
    /// The final temperature of the geometric cooling schedule.
    pub final_temperature: f64,
    /// The longest run a reversal or k-cycle rotation may touch (`< 2`
    /// disables reversals; rotations need at least 3 and are clamped up).
    pub max_segment: usize,
    /// The move-repertoire weight table (defaults to
    /// [`MoveMix::pairwise`], the historical swap + reversal repertoire).
    pub mix: MoveMix,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            seed: 0,
            steps: 2_000,
            initial_temperature: 2.0,
            final_temperature: 1e-3,
            max_segment: 8,
            mix: MoveMix::pairwise(),
        }
    }
}

/// Statistics of one optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimReport {
    /// The objective's name.
    pub objective: &'static str,
    /// The cost of the starting table.
    pub initial: Cost,
    /// The best cost ever visited (the returned table's cost). Never worse
    /// than `initial`.
    pub best: Cost,
    /// Proposed moves (`== config.steps`).
    pub steps: u64,
    /// Accepted moves (improving or annealing-accepted).
    pub accepted: u64,
    /// The number of times the best-so-far cost strictly improved.
    pub improvements: u64,
}

/// The result of [`Optimizer::optimize`]: the refined embedding, its
/// placement table and the run statistics.
#[derive(Clone, Debug)]
pub struct OptimOutcome {
    /// The refined embedding (name `"optimized(<objective>, <original>)"`).
    pub embedding: Embedding,
    /// The refined placement table (guest node index → host node index).
    pub table: Vec<u64>,
    /// Run statistics.
    pub report: OptimReport,
}

/// Deterministic, seeded local search + simulated annealing over placement
/// tables. See the [module docs](self) for the move set and guarantees.
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the config's [`MoveMix`] weights exceed the 1000-per-mille
    /// budget — the pairwise swap must keep a (possibly zero) remainder.
    pub fn new(config: OptimizerConfig) -> Self {
        assert!(
            config.mix.total_per_mille() <= 1000,
            "MoveMix weights sum to {} per mille; the budget is 1000",
            config.mix.total_per_mille()
        );
        Optimizer { config }
    }

    /// Refines `embedding` under `objective` and returns the best table
    /// visited, as an embedding plus run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::TooLarge`] for guests too large to
    /// materialize as a table, and [`EmbeddingError::InvalidImage`] if the
    /// starting embedding maps outside its host.
    pub fn optimize(
        &self,
        embedding: &Embedding,
        objective: &mut dyn Objective,
    ) -> Result<OptimOutcome> {
        let table = embedding.to_table()?;
        let (best_table, report) = self.refine_table(embedding.guest().shape(), table, objective);
        let refined = refined_embedding(embedding, objective.name(), &best_table)?;
        Ok(OptimOutcome {
            embedding: refined,
            table: best_table,
            report,
        })
    }

    /// The table-level annealing core behind [`Optimizer::optimize`]: refines
    /// `table` in place under `objective` and returns the best table visited
    /// with its run statistics. [`parallel::optimize_sharded`] drives this
    /// directly — one call per shard — so shards never pay for constructing
    /// intermediate [`Embedding`] closures.
    pub(crate) fn refine_table(
        &self,
        guest: &Shape,
        mut table: Vec<u64>,
        objective: &mut dyn Objective,
    ) -> (Vec<u64>, OptimReport) {
        debug_assert_eq!(guest.size(), table.len() as u64);
        let n = table.len() as u64;
        let initial = objective.rebuild(&table);
        let mut current = initial;
        let mut best = initial;
        let mut best_table = table.clone();
        let mut accepted = 0u64;
        let mut improvements = 0u64;

        let config = self.config;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // One primary unit must outweigh any plausible secondary delta; the
        // total secondary mass of the starting table is a safe scale.
        let primary_weight = (initial.secondary.max(1) as f64).max(n as f64);
        let scale = (initial.scalar(primary_weight) / n.max(1) as f64).max(1.0);
        let cooling = if config.steps > 1 {
            (config.final_temperature.max(1e-12) / config.initial_temperature.max(1e-12))
                .powf(1.0 / (config.steps - 1) as f64)
        } else {
            1.0
        };
        let mut temperature = config.initial_temperature;
        // Scratch transposition list for compound moves, reused across steps.
        let mut swaps: Vec<(u64, u64)> = Vec::new();

        if n >= 2 {
            for _ in 0..config.steps {
                let proposal = self.propose(&mut rng, guest, n);
                let proposed = apply_move(objective, &mut table, proposal, &mut swaps);
                let accept = proposed <= current || {
                    let delta =
                        (proposed.scalar(primary_weight) - current.scalar(primary_weight)) / scale;
                    temperature > 0.0 && rng.gen_bool((-delta / temperature).exp().min(1.0))
                };
                if accept {
                    accepted += 1;
                    current = proposed;
                    if current < best {
                        best = current;
                        best_table.copy_from_slice(&table);
                        improvements += 1;
                    }
                } else {
                    let restored = undo_move(objective, &mut table, proposal, &mut swaps);
                    debug_assert_eq!(restored, current, "undo must restore the cost");
                    current = restored;
                }
                temperature *= cooling;
            }
        }

        (
            best_table,
            OptimReport {
                objective: objective.name(),
                initial,
                best,
                steps: config.steps,
                accepted,
                improvements,
            },
        )
    }

    /// Draws the next move. Kept separate so the RNG consumption per step is
    /// explicit and deterministic.
    ///
    /// The weight draw happens exactly when the historical optimizer drew
    /// its reversal gate (`max_segment ≥ 2 && n ≥ 2`), and each move kind
    /// consumes the same follow-up draws it always did, so a config with
    /// zero k-cycle and block weights reproduces pre-`MoveMix` runs bit for
    /// bit. Kinds that cannot apply at the drawn size (rotations need a run
    /// of 3, block swaps need a dimension of radix ≥ 2) fall back to a
    /// pairwise swap.
    fn propose(&self, rng: &mut StdRng, guest: &Shape, n: u64) -> Move {
        let config = self.config;
        let mix = config.mix;
        let r = if config.max_segment >= 2 && n >= 2 {
            rng.gen_range(0u64..1000)
        } else {
            // No draw — and no compound move — exactly as before `MoveMix`.
            1000
        };
        let reverse_cut = u64::from(mix.reverse_per_mille);
        let kcycle_cut = reverse_cut + u64::from(mix.kcycle_per_mille);
        let block_cut = kcycle_cut + u64::from(mix.block_per_mille);
        if r < reverse_cut {
            let max_len = (config.max_segment as u64).min(n);
            let len = rng.gen_range(2u64..=max_len);
            let start = rng.gen_range(0u64..=n - len);
            return Move::Reverse {
                start,
                end: start + len - 1,
            };
        }
        if r < kcycle_cut {
            // A 2-cycle is just a swap; rotations start at runs of 3.
            let max_len = (config.max_segment as u64).max(3).min(n);
            if max_len >= 3 {
                let len = rng.gen_range(3u64..=max_len);
                let start = rng.gen_range(0u64..=n - len);
                return Move::Rotate {
                    start,
                    end: start + len - 1,
                };
            }
        } else if r < block_cut {
            if let Some(block) = propose_block(rng, guest) {
                return block;
            }
        }
        let a = rng.gen_range(0u64..n);
        let mut b = rng.gen_range(0u64..n - 1);
        if b >= a {
            b += 1;
        }
        Move::Swap { a, b }
    }
}

/// Draws a dimension-aligned block swap over `guest`, or `None` when the
/// drawn dimension is degenerate (radix < 2) — the caller falls back to a
/// pairwise swap so every step still proposes a move.
fn propose_block(rng: &mut StdRng, guest: &Shape) -> Option<Move> {
    if guest.dim() == 0 {
        return None;
    }
    let dim = rng.gen_range(0..guest.dim() as u64) as usize;
    let radix = u64::from(guest.radix(dim));
    if radix < 2 {
        return None;
    }
    let first = rng.gen_range(0u64..radix);
    let mut second = rng.gen_range(0u64..radix - 1);
    if second >= first {
        second += 1;
    }
    Some(Move::BlockSwap {
        stride: guest.weight(dim + 1),
        radix,
        low: first.min(second),
        high: first.max(second),
    })
}

/// Builds the `"optimized(<objective>, <original>)"` embedding over a
/// refined placement table — the final assembly step shared by
/// [`Optimizer::optimize`] and [`parallel::optimize_sharded`].
pub(crate) fn refined_embedding(
    original: &Embedding,
    objective: &'static str,
    table: &[u64],
) -> Result<Embedding> {
    let name = format!("optimized({objective}, {})", original.name());
    // `Embedding::from_table` re-validates range and injectivity, so even a
    // buggy objective or move generator cannot smuggle a panic into the
    // returned embedding's mapping closure.
    Embedding::from_table(
        original.guest().clone(),
        original.host().clone(),
        name,
        table.to_vec(),
    )
}

/// A proposed permutation move. `Swap`, `Reverse` and `BlockSwap` are
/// involutions (rejection undoes them by re-applying); `Rotate` has order
/// `k` and is undone by applying its explicit inverse (see [`undo_move`]).
#[derive(Clone, Copy, Debug)]
enum Move {
    /// Transpose the images of guest nodes `a` and `b`.
    Swap { a: u64, b: u64 },
    /// Reverse the images of the inclusive run `start..=end` of guest
    /// nodes — a composition of disjoint transpositions.
    Reverse { start: u64, end: u64 },
    /// Rotate the images of the inclusive run `start..=end` left by one:
    /// node `start` takes the image of `start + 1` and node `end` takes
    /// the image of `start`. A k-cycle on the images (`k = end - start +
    /// 1 ≥ 3`), decomposed into two disjoint-transposition batches.
    Rotate { start: u64, end: u64 },
    /// Exchange the images of two parallel guest hyperplanes: every node
    /// whose coordinate along the chosen dimension is `low` trades images
    /// with its partner at coordinate `high`. `stride` and `radix` are the
    /// dimension's weight and radix, captured at proposal time so
    /// application needs no shape lookups. One disjoint-transposition
    /// batch of `n / radix` swaps.
    BlockSwap {
        stride: u64,
        radix: u64,
        low: u64,
        high: u64,
    },
}

/// Fills `swaps` with the disjoint transpositions of reversing the
/// inclusive run `start..=end` (empty when the run has fewer than two
/// elements).
fn reversal_swaps(start: u64, end: u64, swaps: &mut Vec<(u64, u64)>) {
    swaps.clear();
    let (mut i, mut j) = (start, end);
    while i < j {
        swaps.push((i, j));
        i += 1;
        j -= 1;
    }
}

/// Applies `proposal` to the table and the objective's incremental state,
/// returning the resulting cost. `swaps` is a caller-owned scratch buffer
/// for the transpositions of compound moves, so the hot loop stays
/// allocation-free after warm-up.
fn apply_move(
    objective: &mut dyn Objective,
    table: &mut [u64],
    proposal: Move,
    swaps: &mut Vec<(u64, u64)>,
) -> Cost {
    match proposal {
        Move::Swap { a, b } => {
            table.swap(a as usize, b as usize);
            objective.apply_swap(table, a, b)
        }
        Move::Reverse { start, end } => {
            // A reversal is a composition of disjoint transpositions;
            // handing the whole list to the objective lets it amortize any
            // global evaluation phase over the compound move. `end > start`
            // always holds (proposals span at least two nodes).
            reversal_swaps(start, end, swaps);
            objective.apply_disjoint_swaps(table, swaps)
        }
        Move::Rotate { start, end } => {
            // rotate-left-by-one == reverse the whole run, then reverse
            // all but its last element: [a b c d] → [d c b a] → [b c d a].
            // Two batches regardless of k, so any objective with a global
            // evaluation phase (arbitration, delta replay) pays it twice
            // per rotation instead of k − 1 times. `end ≥ start + 2`
            // always holds, so neither batch is empty.
            reversal_swaps(start, end, swaps);
            objective.apply_disjoint_swaps(table, swaps);
            reversal_swaps(start, end - 1, swaps);
            objective.apply_disjoint_swaps(table, swaps)
        }
        Move::BlockSwap {
            stride,
            radix,
            low,
            high,
        } => {
            // Nodes with coordinate `low` along the chosen dimension are
            // exactly `q·(stride·radix) + low·stride + r` for `r <
            // stride`; each trades images with the node `(high − low)·
            // stride` above it. All pairs are disjoint because `low ≠
            // high` picks two non-overlapping hyperplanes.
            swaps.clear();
            let n = table.len() as u64;
            let plane = stride * radix;
            let shift = (high - low) * stride;
            let mut base = low * stride;
            while base < n {
                for x in base..base + stride {
                    swaps.push((x, x + shift));
                }
                base += plane;
            }
            objective.apply_disjoint_swaps(table, swaps)
        }
    }
}

/// Undoes a just-applied `proposal`, restoring the table and the
/// objective's incremental state exactly. Involutions undo by re-applying;
/// a rotation is undone by the inverse rotation — its two reversal batches
/// applied in the opposite order.
fn undo_move(
    objective: &mut dyn Objective,
    table: &mut [u64],
    proposal: Move,
    swaps: &mut Vec<(u64, u64)>,
) -> Cost {
    match proposal {
        Move::Rotate { start, end } => {
            // rotate-right-by-one: [b c d a] → [d c b a] → [a b c d].
            reversal_swaps(start, end - 1, swaps);
            objective.apply_disjoint_swaps(table, swaps);
            reversal_swaps(start, end, swaps);
            objective.apply_disjoint_swaps(table, swaps)
        }
        involution => apply_move(objective, table, involution, swaps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::embed;
    use crate::congestion::congestion_sequential;
    use std::sync::Arc;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    fn random_swaps(n: u64, count: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let a = rng.gen_range(0u64..n);
                let mut b = rng.gen_range(0u64..n - 1);
                if b >= a {
                    b += 1;
                }
                (a, b)
            })
            .collect()
    }

    #[test]
    fn max_tracker_follows_increments_and_decrements() {
        let mut t = MaxTracker::default();
        assert_eq!(t.max, 0);
        t.increment(0); // one slot at 1
        t.increment(1); // that slot at 2
        t.increment(0); // second slot at 1
        assert_eq!(t.max, 2);
        t.decrement(2);
        assert_eq!(t.max, 1);
        t.decrement(1);
        t.decrement(1);
        assert_eq!(t.max, 0);
    }

    #[test]
    fn congestion_objective_matches_full_congestion_sweep() {
        for (guest, host) in [
            (
                Grid::torus(shape(&[4, 2, 3])),
                Grid::mesh(shape(&[4, 2, 3])),
            ),
            (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
            (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 6]))),
        ] {
            let e = embed(&guest, &host).unwrap();
            let mut objective = CongestionObjective::new(&guest, &host).unwrap();
            let table = e.to_table().unwrap();
            let cost = objective.rebuild(&table);
            let report = congestion_sequential(&e).unwrap();
            assert_eq!(cost.primary, report.max_congestion, "{guest} -> {host}");
            assert_eq!(cost.secondary, report.total_path_length);
        }
    }

    #[test]
    fn incremental_swaps_match_rebuild_exactly() {
        // Differential check: a long random walk of incremental swap updates
        // must land on exactly the state a full re-sweep computes.
        for (guest, host) in [
            (
                Grid::torus(shape(&[4, 2, 3])),
                Grid::mesh(shape(&[4, 2, 3])),
            ),
            (Grid::torus(shape(&[5, 3])), Grid::mesh(shape(&[5, 3]))),
            (Grid::hypercube(4).unwrap(), Grid::torus(shape(&[4, 4]))),
        ] {
            let e = embed(&guest, &host).unwrap();
            let mut table = e.to_table().unwrap();
            let mut incremental = CongestionObjective::new(&guest, &host).unwrap();
            let mut cost = incremental.rebuild(&table);
            for (a, b) in random_swaps(guest.size(), 200, 17) {
                table.swap(a as usize, b as usize);
                cost = incremental.apply_swap(&table, a, b);
            }
            let mut fresh = CongestionObjective::new(&guest, &host).unwrap();
            assert_eq!(cost, fresh.rebuild(&table), "{guest} -> {host}");
            assert_eq!(incremental.loads, fresh.loads);
        }
    }

    #[test]
    fn dilation_incremental_swaps_match_rebuild() {
        let guest = Grid::torus(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[4, 6]));
        let e = embed(&guest, &host).unwrap();
        let mut table = e.to_table().unwrap();
        let mut incremental = DilationObjective::new(&guest, &host).unwrap();
        let mut cost = incremental.rebuild(&table);
        for (a, b) in random_swaps(guest.size(), 300, 3) {
            table.swap(a as usize, b as usize);
            cost = incremental.apply_swap(&table, a, b);
        }
        let mut fresh = DilationObjective::new(&guest, &host).unwrap();
        assert_eq!(cost, fresh.rebuild(&table));
        // And the totals agree with the embedding built from the table.
        let rebuilt = Embedding::new(
            guest.clone(),
            host.clone(),
            "table",
            Arc::new({
                let host = host.clone();
                let table = table.clone();
                move |x| host.coord(table[x as usize]).unwrap()
            }),
        )
        .unwrap();
        let (avg, edges) = rebuilt.average_dilation();
        assert_eq!(cost.primary, (avg * edges as f64).round() as u64);
        assert_eq!(cost.secondary, rebuilt.dilation());
    }

    #[test]
    fn wirelength_matches_the_congestion_sweeps_total_path_length() {
        // DOR routes are shortest paths, so the unit-weight wirelength is
        // exactly the independent congestion sweep's total path length.
        for (guest, host) in [
            (Grid::hypercube(4).unwrap(), Grid::torus(shape(&[4, 4]))),
            (Grid::hypercube(3).unwrap(), Grid::ring(8).unwrap()),
            (
                Grid::torus(shape(&[4, 2, 3])),
                Grid::mesh(shape(&[4, 2, 3])),
            ),
        ] {
            let e = embed(&guest, &host).unwrap();
            let mut objective = WirelengthObjective::new(&guest, &host).unwrap();
            let cost = objective.rebuild(&e.to_table().unwrap());
            let report = congestion_sequential(&e).unwrap();
            assert_eq!(cost.primary, report.total_path_length, "{guest} -> {host}");
            assert_eq!(cost.secondary, e.dilation());
        }
    }

    #[test]
    fn wirelength_incremental_swaps_match_rebuild() {
        // Unit weights and a skewed weight function both stay bit-exact
        // against a full recompute after a long random swap walk.
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::torus(shape(&[4, 4]));
        let e = embed(&guest, &host).unwrap();
        for weighted in [false, true] {
            let build = || {
                if weighted {
                    WirelengthObjective::with_weights(&guest, &host, |t, h| 1 + (t * 7 + h) % 5)
                } else {
                    WirelengthObjective::new(&guest, &host)
                }
            };
            let mut table = e.to_table().unwrap();
            let mut incremental = build().unwrap();
            let mut cost = incremental.rebuild(&table);
            for (a, b) in random_swaps(guest.size(), 250, 23) {
                table.swap(a as usize, b as usize);
                cost = incremental.apply_swap(&table, a, b);
            }
            assert_eq!(
                cost,
                build().unwrap().rebuild(&table),
                "weighted={weighted}"
            );
        }
    }

    #[test]
    fn wirelength_double_swap_is_identity() {
        let guest = Grid::hypercube(3).unwrap();
        let host = Grid::torus(shape(&[4, 2]));
        let e = embed(&guest, &host).unwrap();
        let mut table = e.to_table().unwrap();
        let mut objective =
            WirelengthObjective::with_weights(&guest, &host, |t, h| 1 + (t + h) % 3).unwrap();
        let before = objective.rebuild(&table);
        table.swap(1, 6);
        objective.apply_swap(&table, 1, 6);
        table.swap(1, 6);
        let after = objective.apply_swap(&table, 1, 6);
        assert_eq!(before, after);
    }

    #[test]
    fn zero_weight_edges_drop_out_of_the_primary_cost() {
        let guest = Grid::hypercube(3).unwrap();
        let host = Grid::ring(8).unwrap();
        let e = embed(&guest, &host).unwrap();
        let table = e.to_table().unwrap();
        let mut all = WirelengthObjective::new(&guest, &host).unwrap();
        let mut none = WirelengthObjective::with_weights(&guest, &host, |_, _| 0).unwrap();
        let full = all.rebuild(&table);
        let empty = none.rebuild(&table);
        assert_eq!(empty.primary, 0);
        // The tie-breaker (max per-edge distance) ignores weights.
        assert_eq!(empty.secondary, full.secondary);
    }

    #[test]
    fn double_swap_is_identity() {
        let guest = Grid::torus(shape(&[3, 3]));
        let host = Grid::mesh(shape(&[3, 3]));
        let e = embed(&guest, &host).unwrap();
        let mut table = e.to_table().unwrap();
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let before = objective.rebuild(&table);
        let loads_before = objective.loads.clone();
        table.swap(2, 7);
        objective.apply_swap(&table, 2, 7);
        table.swap(2, 7);
        let after = objective.apply_swap(&table, 2, 7);
        assert_eq!(before, after);
        assert_eq!(loads_before, objective.loads);
    }

    #[test]
    fn optimizer_is_monotone_and_deterministic() {
        let guest = Grid::torus(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[2, 2, 2, 3]));
        let e = embed(&guest, &host).unwrap();
        let config = OptimizerConfig {
            seed: 9,
            steps: 500,
            ..OptimizerConfig::default()
        };
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let first = Optimizer::new(config).optimize(&e, &mut objective).unwrap();
        assert!(first.report.best <= first.report.initial);
        assert!(first.embedding.is_injective());

        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let second = Optimizer::new(config).optimize(&e, &mut objective).unwrap();
        assert_eq!(first.table, second.table, "same seed, same table");
        assert_eq!(first.report, second.report);

        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let other_seed = Optimizer::new(OptimizerConfig { seed: 10, ..config })
            .optimize(&e, &mut objective)
            .unwrap();
        // Different seeds explore differently (reports rarely collide).
        assert!(other_seed.report.best <= other_seed.report.initial);
    }

    #[test]
    fn optimizer_returns_cost_of_returned_table() {
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::mesh(shape(&[4, 4]));
        let e = embed(&guest, &host).unwrap();
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 3,
            steps: 400,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        let mut fresh = CongestionObjective::new(&guest, &host).unwrap();
        assert_eq!(fresh.rebuild(&outcome.table), outcome.report.best);
        let report = congestion_sequential(&outcome.embedding).unwrap();
        assert_eq!(report.max_congestion, outcome.report.best.primary);
        assert_eq!(report.total_path_length, outcome.report.best.secondary);
    }

    #[test]
    fn tiny_graphs_survive_optimization() {
        // n = 2: only one non-identity permutation; must not panic.
        let guest = Grid::ring(2).unwrap();
        let host = Grid::ring(2).unwrap();
        let e = Embedding::identity(guest.clone(), host.clone()).unwrap();
        let mut objective = CongestionObjective::new(&guest, &host).unwrap();
        let outcome = Optimizer::new(OptimizerConfig {
            seed: 1,
            steps: 50,
            ..OptimizerConfig::default()
        })
        .optimize(&e, &mut objective)
        .unwrap();
        assert!(outcome.embedding.is_injective());
        assert!(outcome.report.best <= outcome.report.initial);
    }

    #[test]
    fn kcycle_moves_escape_plateaus_pairwise_moves_cannot() {
        // The plateau story, swept over the exact same-shape family the
        // report runs (every distinct torus shape of size 4..=36 and
        // dim <= 3 into the identical-shape mesh — 85 pairs):
        //
        // 1. From the *constructive* start, nothing improves — not the
        //    historical swap + reversal repertoire, and not the compound
        //    one. That is not a search failure: each torus ring of radix l
        //    must cross each of its l-1 mesh line cuts at least twice
        //    (a cycle leaves and re-enters every cut), and the constructive
        //    embedding achieves exactly two crossings per cut for both the
        //    max-congestion primary and total-path-length secondary. The
        //    plateau is the global optimum, so both pins below are laws,
        //    not tuning artifacts.
        // 2. From a seeded *shuffled* start, pairwise-only annealing sticks
        //    at local optima the compound repertoire
        //    ([`MoveMix::compound`]: k-cycle rotations + dimension-aligned
        //    block swaps in the mix) escapes: with the identical seed and
        //    schedule, compound strictly beats the pairwise result on a
        //    pinned count of the 85 trials. This is the escape the
        //    compound moves exist for; the count is seeded, deterministic,
        //    and moves only when the RNG stream or repertoire changes.
        use rand::seq::SliceRandom;
        use topology::families::distinct_shapes_of_size;
        let mut trials = 0u64;
        let mut pairwise_stuck = 0u32;
        let mut constructive_improved = 0u32;
        let mut compound_wins = 0u32;
        for n in 4..=36u64 {
            for s in distinct_shapes_of_size(n, 3) {
                let guest = Grid::torus(s.clone());
                let host = Grid::mesh(s);
                let constructive = embed(&guest, &host).unwrap().to_table().unwrap();
                let mut shuffled = constructive.clone();
                shuffled.shuffle(&mut StdRng::seed_from_u64(1987 + trials));
                trials += 1;
                let run = |mix: MoveMix, start: &[u64]| {
                    let mut objective = CongestionObjective::new(&guest, &host).unwrap();
                    Optimizer::new(OptimizerConfig {
                        seed: 1987,
                        steps: 1_200,
                        mix,
                        ..OptimizerConfig::default()
                    })
                    .refine_table(guest.shape(), start.to_vec(), &mut objective)
                    .1
                };
                let from_constructive = run(MoveMix::pairwise(), &constructive);
                if from_constructive.best == from_constructive.initial {
                    pairwise_stuck += 1;
                }
                let compound_constructive = run(MoveMix::compound(), &constructive);
                if compound_constructive.best < compound_constructive.initial {
                    constructive_improved += 1;
                }
                let pairwise = run(MoveMix::pairwise(), &shuffled);
                let compound = run(MoveMix::compound(), &shuffled);
                if compound.best < pairwise.best {
                    compound_wins += 1;
                }
            }
        }
        assert_eq!(trials, 85, "the report sweep's same_shape family");
        assert_eq!(
            pairwise_stuck, 85,
            "a pairwise walk left the constructive plateau — the cut-crossing \
             lower bound says that table cannot be real; check the objective"
        );
        assert_eq!(
            constructive_improved, 0,
            "a compound walk beat the constructive same-shape cost, which \
             meets the cycle cut-crossing lower bound exactly — check the \
             objective before celebrating"
        );
        assert_eq!(
            compound_wins, 27,
            "seeded and deterministic; re-measure and update this pin \
             alongside any deliberate RNG-stream or repertoire change"
        );
    }

    #[test]
    fn mismatched_sizes_are_rejected() {
        let guest = Grid::ring(4).unwrap();
        let host = Grid::ring(8).unwrap();
        assert!(matches!(
            CongestionObjective::new(&guest, &host),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
        assert!(matches!(
            DilationObjective::new(&guest, &host),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
        assert!(matches!(
            WirelengthObjective::new(&guest, &host),
            Err(EmbeddingError::SizeMismatch { .. })
        ));
    }
}
