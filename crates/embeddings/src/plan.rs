//! Plan-as-value: serializable embedding descriptions decoupled from live
//! closures.
//!
//! Every embedding this crate constructs is a closure over a handful of
//! integers — exactly the paper's point that a placement query is `O(d)`
//! digit arithmetic with nothing materialized. Closures, however, cannot
//! cross a process boundary. A [`Plan`] is the value form of an embedding:
//! the graph pair, the construction's name, its dilation figure, and
//! (optionally) an explicit placement table for refined placements that have
//! no closed form. Plans serialize to a one-line text format and rebuild
//! into a live [`Embedding`] with [`Plan::to_embedding`], which is what the
//! `embd` placement service serves over the wire and what `explab` dumps
//! alongside every trial record.
//!
//! # Wire format
//!
//! ```text
//! plan v1 guest=torus:4x2x3 host=mesh:4x6 dilation=4 construction="U_V ∘ T_L ∘ π" table=-
//! plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction="refined" table=0,1,3,2
//! ```
//!
//! Fields appear in exactly this order. A graph spec is
//! `torus:<l1>x…x<ld>` or `mesh:<l1>x…x<ld>` (rings, lines and hypercubes
//! are the 1-dimensional and all-radix-2 special cases). The construction
//! name is a quoted string with JSON-style escapes (`\"`, `\\`, `\n`, `\t`,
//! `\r`, `\uXXXX` including surrogate pairs for astral code points).
//! `table=-` means "rebuild by construction"; otherwise the table is the
//! comma-separated list of host node indices, guest-node order.
//! [`Plan::parse`] accepts one optional trailing newline; everything else is
//! rejected with a byte-offset [`PlanError::Parse`], so a malformed plan —
//! or a truncated one — can never panic a service that deserializes it.
//!
//! # Round-trip guarantees
//!
//! * `Plan::parse(&plan.to_text()) == Ok(plan)` for every plan
//!   (bit-identical; proptested in `tests/plan.rs`);
//! * `plan.to_embedding()` agrees with [`crate::auto::embed`] on every node
//!   for closed-form plans (differential test, same suite);
//! * table-backed plans revalidate through [`Embedding::from_table`], so a
//!   deserialized table that is too short, out of range, or non-injective is
//!   a typed error, never a panic.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use topology::{GraphKind, Grid, Shape};

use crate::auto;
use crate::embedding::Embedding;
use crate::error::EmbeddingError;

/// Why a plan could not be built, parsed, or rebuilt into an embedding.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The serialized text is malformed.
    Parse {
        /// Byte offset of the failure within the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A closed-form plan's recorded construction does not match what the
    /// planner builds for the pair today — the plan was produced by a
    /// different (older or newer) planner and must not be silently
    /// reinterpreted.
    ConstructionMismatch {
        /// The construction the plan recorded.
        recorded: String,
        /// The construction the planner builds now.
        rebuilt: String,
    },
    /// An underlying embedding error (unsupported pair, size mismatch,
    /// invalid table, …).
    Embedding(EmbeddingError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse { offset, message } => {
                write!(f, "invalid plan at byte {offset}: {message}")
            }
            PlanError::ConstructionMismatch { recorded, rebuilt } => write!(
                f,
                "plan records construction {recorded:?} but the planner builds {rebuilt:?}"
            ),
            PlanError::Embedding(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Embedding(error) => Some(error),
            _ => None,
        }
    }
}

impl From<EmbeddingError> for PlanError {
    fn from(value: EmbeddingError) -> Self {
        PlanError::Embedding(value)
    }
}

/// A serializable description of an embedding: guest and host graphs, the
/// construction's name, its dilation figure, and an optional explicit
/// placement table. See the [module docs](self) for the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    guest: Grid,
    host: Grid,
    construction: String,
    dilation: u64,
    table: Option<Arc<[u64]>>,
}

impl Plan {
    /// Describes the paper's construction for `(guest, host)`: runs the
    /// planner, records the chosen construction's name and predicted
    /// dilation, and stores no table — [`Plan::to_embedding`] rebuilds the
    /// closure from the shapes alone.
    ///
    /// # Errors
    ///
    /// The planner's own errors ([`EmbeddingError::SizeMismatch`],
    /// [`EmbeddingError::Unsupported`]), wrapped in
    /// [`PlanError::Embedding`].
    pub fn closed_form(guest: &Grid, host: &Grid) -> Result<Plan, PlanError> {
        let embedding = auto::embed(guest, host)?;
        let dilation = auto::predicted_dilation(guest, host)?;
        Ok(Plan {
            guest: guest.clone(),
            host: host.clone(),
            construction: embedding.name().to_string(),
            dilation,
            table: None,
        })
    }

    /// Describes an already-constructed closed-form embedding without
    /// re-running the planner — for callers (like `explab`'s trial runner)
    /// that hold the [`crate::auto::embed`] result in hand. The construction
    /// name is recorded as given; [`Plan::to_embedding`] re-validates it
    /// against the planner, so a misdescribed plan fails loudly there
    /// rather than silently rebuilding a different mapping.
    pub fn describing(guest: &Grid, host: &Grid, construction: &str, dilation: u64) -> Plan {
        Plan {
            guest: guest.clone(),
            host: host.clone(),
            construction: construction.to_string(),
            dilation,
            table: None,
        }
    }

    /// A table-backed plan: the placement is the explicit `table` (guest
    /// node index → host node index), e.g. an annealing-refined placement
    /// with no closed form. The table is validated here, once, so every
    /// later [`Plan::to_embedding`] is infallible in practice.
    ///
    /// # Errors
    ///
    /// [`EmbeddingError::SizeMismatch`] / [`EmbeddingError::InvalidTable`]
    /// via [`Embedding::from_table`]'s validation, wrapped in
    /// [`PlanError::Embedding`].
    pub fn with_table(
        guest: Grid,
        host: Grid,
        construction: impl Into<String>,
        dilation: u64,
        table: Vec<u64>,
    ) -> Result<Plan, PlanError> {
        let construction = construction.into();
        let table: Arc<[u64]> = table.into();
        // Validation only; the embedding itself is rebuilt on demand.
        Embedding::from_table(
            guest.clone(),
            host.clone(),
            construction.clone(),
            table.to_vec(),
        )?;
        Ok(Plan {
            guest,
            host,
            construction,
            dilation,
            table: Some(table),
        })
    }

    /// The guest graph.
    pub fn guest(&self) -> &Grid {
        &self.guest
    }

    /// The host graph.
    pub fn host(&self) -> &Grid {
        &self.host
    }

    /// The recorded construction name (e.g. `"U_V"`,
    /// `"optimized(congestion, T_L)"`).
    pub fn construction(&self) -> &str {
        &self.construction
    }

    /// The recorded dilation figure: the planner's predicted dilation for
    /// closed-form plans, the caller-supplied (typically measured) figure
    /// for table-backed ones.
    pub fn dilation(&self) -> u64 {
        self.dilation
    }

    /// The explicit placement table, if this plan carries one.
    pub fn table(&self) -> Option<&[u64]> {
        self.table.as_deref()
    }

    /// Rebuilds the live embedding this plan describes.
    ///
    /// Table-backed plans revalidate and wrap their table; closed-form plans
    /// re-run the planner and check that it still picks the recorded
    /// construction.
    ///
    /// # Errors
    ///
    /// [`PlanError::ConstructionMismatch`] when the planner's choice for the
    /// pair no longer matches the plan; [`PlanError::Embedding`] for planner
    /// or table errors.
    pub fn to_embedding(&self) -> Result<Embedding, PlanError> {
        match &self.table {
            Some(table) => Ok(Embedding::from_table(
                self.guest.clone(),
                self.host.clone(),
                self.construction.clone(),
                table.to_vec(),
            )?),
            None => {
                let embedding = auto::embed(&self.guest, &self.host)?;
                if embedding.name() != self.construction {
                    return Err(PlanError::ConstructionMismatch {
                        recorded: self.construction.clone(),
                        rebuilt: embedding.name().to_string(),
                    });
                }
                Ok(embedding)
            }
        }
    }

    /// Serializes the plan as one line of text (no trailing newline). The
    /// output is canonical: equal plans serialize identically, and
    /// [`Plan::parse`] restores the plan bit-identically.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("plan v1 guest=");
        out.push_str(&format_grid_spec(&self.guest));
        out.push_str(" host=");
        out.push_str(&format_grid_spec(&self.host));
        out.push_str(&format!(" dilation={} construction=\"", self.dilation));
        escape_into(&mut out, &self.construction);
        out.push_str("\" table=");
        match &self.table {
            None => out.push('-'),
            Some(table) => {
                for (i, y) in table.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&y.to_string());
                }
            }
        }
        out
    }

    /// Parses the text format of [`Plan::to_text`] (one optional trailing
    /// newline is tolerated). Table-backed plans are fully re-validated.
    ///
    /// # Errors
    ///
    /// [`PlanError::Parse`] with the byte offset of the first defect;
    /// [`PlanError::Embedding`] when the fields parse but do not form a
    /// valid plan (size mismatch, invalid table, …).
    pub fn parse(text: &str) -> Result<Plan, PlanError> {
        let mut cursor = Cursor::new(text);
        cursor.literal("plan v1 guest=")?;
        let guest = cursor.grid_spec()?;
        cursor.literal(" host=")?;
        let host = cursor.grid_spec()?;
        cursor.literal(" dilation=")?;
        let dilation = cursor.number()?;
        cursor.literal(" construction=")?;
        let construction = cursor.quoted_string()?;
        cursor.literal(" table=")?;
        let table = cursor.table()?;
        cursor.end()?;
        match table {
            None => Ok(Plan {
                guest,
                host,
                construction,
                dilation,
                table: None,
            }),
            Some(table) => Plan::with_table(guest, host, construction, dilation, table),
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl FromStr for Plan {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Plan::parse(s)
    }
}

/// Formats a graph as the wire spec `torus:4x2x3` / `mesh:4x6` — the inverse
/// of [`parse_grid_spec`], shared with the `embd` service protocol.
pub fn format_grid_spec(grid: &Grid) -> String {
    let mut out = String::with_capacity(8 + 4 * grid.dim());
    out.push_str(match grid.kind() {
        GraphKind::Torus => "torus:",
        GraphKind::Mesh => "mesh:",
    });
    for (i, &l) in grid.shape().radices().iter().enumerate() {
        if i > 0 {
            out.push('x');
        }
        out.push_str(&l.to_string());
    }
    out
}

/// Parses the wire spec `torus:4x2x3` / `mesh:4x6` into a graph, with typed
/// byte-offset errors for every malformation (unknown kind, empty or
/// non-numeric radices, radices `< 2`, size overflow).
///
/// # Errors
///
/// [`PlanError::Parse`] with the offset of the defect within `spec`.
pub fn parse_grid_spec(spec: &str) -> Result<Grid, PlanError> {
    let mut cursor = Cursor::new(spec);
    let grid = cursor.grid_spec()?;
    cursor.end()?;
    Ok(grid)
}

/// Appends `s` to `out` with the escape scheme of the plan format: `\"`,
/// `\\`, `\n`, `\t`, `\r`, and `\uXXXX` for the remaining control
/// characters. Everything else (including non-ASCII) passes through as raw
/// UTF-8.
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A byte cursor over the serialized form, producing offset-bearing parse
/// errors. All multi-byte reasoning is done on `char` boundaries via
/// `str` slicing, so the cursor can never split a UTF-8 sequence.
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { text, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> PlanError {
        PlanError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    /// Consumes an exact literal.
    fn literal(&mut self, literal: &str) -> Result<(), PlanError> {
        if self.rest().starts_with(literal) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(format!("expected {literal:?}")))
        }
    }

    /// Consumes a decimal `u64`.
    fn number(&mut self) -> Result<u64, PlanError> {
        let digits: usize = self
            .rest()
            .bytes()
            .take_while(|b| b.is_ascii_digit())
            .count();
        if digits == 0 {
            return Err(self.error("expected a number"));
        }
        let text = &self.rest()[..digits];
        let value = text
            .parse::<u64>()
            .map_err(|_| self.error(format!("number {text:?} does not fit in 64 bits")))?;
        self.pos += digits;
        Ok(value)
    }

    /// Consumes a graph spec: `torus:` or `mesh:` followed by `x`-separated
    /// radices.
    fn grid_spec(&mut self) -> Result<Grid, PlanError> {
        let kind = if self.rest().starts_with("torus:") {
            self.pos += "torus:".len();
            GraphKind::Torus
        } else if self.rest().starts_with("mesh:") {
            self.pos += "mesh:".len();
            GraphKind::Mesh
        } else {
            return Err(self.error("expected a graph kind (\"torus:\" or \"mesh:\")"));
        };
        let mut radices: Vec<u32> = Vec::new();
        loop {
            let digits: usize = self
                .rest()
                .bytes()
                .take_while(|b| b.is_ascii_digit())
                .count();
            if digits == 0 {
                return Err(self.error("expected a radix"));
            }
            let text = &self.rest()[..digits];
            let radix = text
                .parse::<u32>()
                .map_err(|_| self.error(format!("radix {text:?} does not fit in 32 bits")))?;
            radices.push(radix);
            self.pos += digits;
            if self.rest().starts_with('x') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let shape = Shape::new(radices).map_err(|e| self.error(format!("invalid shape: {e}")))?;
        Ok(Grid::new(kind, shape))
    }

    /// Consumes a quoted string with the escape scheme of [`escape_into`],
    /// decoding `\uXXXX` escapes (including surrogate pairs) back to
    /// characters.
    fn quoted_string(&mut self) -> Result<String, PlanError> {
        self.literal("\"")?;
        let mut out = String::new();
        loop {
            let rest = self.rest();
            let Some(ch) = rest.chars().next() else {
                return Err(self.error("unterminated string"));
            };
            match ch {
                '"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                '\\' => {
                    self.pos += 1;
                    let Some(escaped) = self.rest().chars().next() else {
                        return Err(self.error("unterminated escape"));
                    };
                    match escaped {
                        '"' | '\\' => {
                            out.push(escaped);
                            self.pos += 1;
                        }
                        'n' => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        't' => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        'r' => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        'u' => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                        }
                        other => {
                            return Err(self.error(format!("unsupported escape \\{other}")));
                        }
                    }
                }
                c => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decodes the `XXXX` of a `\uXXXX` escape whose `\u` has already been
    /// consumed, pairing a high surrogate with a following `\uXXXX` low
    /// surrogate (and rejecting lone or mismatched surrogates).
    fn unicode_escape(&mut self) -> Result<char, PlanError> {
        let first = self.hex4()?;
        let code = match first {
            0xD800..=0xDBFF => {
                // A high surrogate must be followed by an escaped low
                // surrogate; together they name one astral code point.
                self.literal("\\u")
                    .map_err(|_| self.error("high surrogate not followed by \\u escape"))?;
                let second = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.error(format!(
                        "high surrogate {first:04x} followed by non-surrogate {second:04x}"
                    )));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            }
            0xDC00..=0xDFFF => {
                return Err(self.error(format!("lone low surrogate {first:04x}")));
            }
            code => code,
        };
        char::from_u32(code).ok_or_else(|| self.error(format!("non-scalar code point {code:x}")))
    }

    /// Consumes exactly four hex digits.
    fn hex4(&mut self) -> Result<u32, PlanError> {
        let rest = self.rest();
        if rest.len() < 4 || !rest.as_bytes()[..4].iter().all(u8::is_ascii_hexdigit) {
            return Err(self.error("expected four hex digits"));
        }
        let value = u32::from_str_radix(&rest[..4], 16).expect("four hex digits");
        self.pos += 4;
        Ok(value)
    }

    /// Consumes the table field: `-` or a comma-separated list of `u64`s.
    fn table(&mut self) -> Result<Option<Vec<u64>>, PlanError> {
        if self.rest().starts_with('-') {
            self.pos += 1;
            return Ok(None);
        }
        let mut table = Vec::new();
        loop {
            table.push(self.number()?);
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else {
                return Ok(Some(table));
            }
        }
    }

    /// Requires the input to be exhausted (tolerating one trailing newline).
    fn end(&mut self) -> Result<(), PlanError> {
        if self.rest() == "\n" {
            self.pos += 1;
        }
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(self.error("trailing characters after the plan"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn closed_form_plan_round_trips() {
        let guest = Grid::torus(shape(&[4, 2, 3]));
        let host = Grid::mesh(shape(&[4, 6]));
        let plan = Plan::closed_form(&guest, &host).unwrap();
        assert!(plan.table().is_none());
        let text = plan.to_text();
        assert!(text.starts_with("plan v1 guest=torus:4x2x3 host=mesh:4x6 "));
        assert!(text.ends_with(" table=-"));
        assert_eq!(Plan::parse(&text).unwrap(), plan);
        assert_eq!(text.parse::<Plan>().unwrap(), plan);
        assert_eq!(plan.to_string(), text);
        // One trailing newline is tolerated (wire frames may carry one).
        assert_eq!(Plan::parse(&format!("{text}\n")).unwrap(), plan);
    }

    #[test]
    fn table_plan_round_trips_and_rebuilds() {
        let guest = Grid::mesh(shape(&[2, 2]));
        let host = Grid::mesh(shape(&[4]));
        let plan =
            Plan::with_table(guest.clone(), host.clone(), "refined", 1, vec![0, 1, 3, 2]).unwrap();
        let text = plan.to_text();
        assert!(text.ends_with(" table=0,1,3,2"));
        let parsed = Plan::parse(&text).unwrap();
        assert_eq!(parsed, plan);
        let embedding = parsed.to_embedding().unwrap();
        assert_eq!(embedding.name(), "refined");
        for (x, &y) in [0u64, 1, 3, 2].iter().enumerate() {
            assert_eq!(embedding.map_index(x as u64), y);
        }
    }

    #[test]
    fn closed_form_rebuild_matches_planner() {
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::mesh(shape(&[4, 4]));
        let plan = Plan::closed_form(&guest, &host).unwrap();
        let rebuilt = plan.to_embedding().unwrap();
        let direct = auto::embed(&guest, &host).unwrap();
        assert_eq!(rebuilt.name(), direct.name());
        for x in 0..guest.size() {
            assert_eq!(rebuilt.map_index(x), direct.map_index(x));
        }
    }

    #[test]
    fn describing_mismatch_is_a_typed_error() {
        let guest = Grid::torus(shape(&[4, 2, 3]));
        let host = Grid::mesh(shape(&[4, 6]));
        let plan = Plan::describing(&guest, &host, "not the real construction", 1);
        assert!(matches!(
            plan.to_embedding(),
            Err(PlanError::ConstructionMismatch { .. })
        ));
    }

    #[test]
    fn construction_names_escape_and_unescape() {
        let guest = Grid::mesh(shape(&[2, 2]));
        let host = Grid::mesh(shape(&[2, 2]));
        for name in [
            "π ∘ \"quoted\"",
            "back\\slash",
            "tab\there",
            "new\nline",
            "ctrl\u{1}char",
            "astral 😀 smile",
            "µ ✓",
        ] {
            let plan = Plan::describing(&guest, &host, name, 1);
            let parsed = Plan::parse(&plan.to_text()).unwrap();
            assert_eq!(parsed.construction(), name);
            assert_eq!(parsed, plan);
        }
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        let header = "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction=";
        for (quoted, expected) in [(r#""µ""#, "µ"), (r#""✓""#, "✓"), (r#""😀""#, "😀")] {
            let text = format!("{header}{quoted} table=-");
            assert_eq!(Plan::parse(&text).unwrap().construction(), expected);
        }
        for (quoted, defect) in [
            (r#""\ud800""#, "lone high surrogate"),
            (r#""\ud800x""#, "high surrogate without \\u"),
            (r#""\ud800A""#, "high surrogate + non-surrogate"),
            (r#""\udc00""#, "lone low surrogate"),
            (r#""\uzzzz""#, "non-hex digits"),
        ] {
            let text = format!("{header}{quoted} table=-");
            assert!(
                matches!(Plan::parse(&text), Err(PlanError::Parse { .. })),
                "{defect}"
            );
        }
    }

    #[test]
    fn malformed_plans_are_typed_parse_errors() {
        for bad in [
            "",
            "plan v2 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction=\"x\" table=-",
            "plan v1 guest=cube:2x2 host=mesh:2x2 dilation=1 construction=\"x\" table=-",
            "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=one construction=\"x\" table=-",
            "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction=\"x table=-",
            "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction=\"x\" table=0,1,2,",
            "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction=\"x\" table=- junk",
            "plan v1 guest=mesh:1x2 host=mesh:2 dilation=1 construction=\"x\" table=-",
            "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=99999999999999999999 construction=\"x\" table=-",
        ] {
            assert!(
                matches!(Plan::parse(bad), Err(PlanError::Parse { .. })),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn invalid_tables_are_typed_embedding_errors() {
        let header = "plan v1 guest=mesh:2x2 host=mesh:2x2 dilation=1 construction=\"x\"";
        for (table, defect) in [
            ("0,1,2", "too short"),
            ("0,1,2,4", "out of range"),
            ("0,1,2,2", "repeated image"),
        ] {
            let text = format!("{header} table={table}");
            assert!(
                matches!(
                    Plan::parse(&text),
                    Err(PlanError::Embedding(
                        EmbeddingError::InvalidTable { .. } | EmbeddingError::SizeMismatch { .. }
                    ))
                ),
                "{defect}"
            );
        }
    }

    #[test]
    fn grid_specs_round_trip_and_reject_malformations() {
        for spec in ["torus:4x2x3", "mesh:4x6", "torus:2", "mesh:65535x2"] {
            let grid = parse_grid_spec(spec).unwrap();
            assert_eq!(format_grid_spec(&grid), spec);
        }
        for bad in [
            "",
            "torus",
            "torus:",
            "mesh:4x",
            "mesh:x4",
            "ring:4",
            "mesh:4,6",
            "mesh:1x4",
            "mesh:0x4",
            "torus:4x2x3 ",
            "mesh:99999999999",
            "torus:4294967296",
        ] {
            assert!(
                matches!(parse_grid_spec(bad), Err(PlanError::Parse { .. })),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn errors_display_helpfully() {
        let parse = Plan::parse("nope").unwrap_err();
        assert!(parse.to_string().contains("invalid plan at byte 0"));
        let mismatch = PlanError::ConstructionMismatch {
            recorded: "a".into(),
            rebuilt: "b".into(),
        };
        assert!(mismatch.to_string().contains("planner builds"));
        let wrapped: PlanError = EmbeddingError::SizeMismatch { guest: 4, host: 6 }.into();
        assert!(wrapped.to_string().contains("same size"));
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
