//! Edge congestion of an embedding.
//!
//! The paper optimizes dilation only, but a downstream user placing a task
//! graph on a network usually also cares about **congestion**: when every
//! guest edge is routed along a shortest path in the host, how many routed
//! paths share the busiest host link? This module measures congestion under
//! deterministic dimension-ordered routing (the same discipline the `netsim`
//! crate simulates), as a library-level extension of the paper's cost model.

use std::collections::HashMap;

use topology::{Coord, Grid};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// Aggregate congestion statistics for an embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct CongestionReport {
    /// The number of routed guest edges.
    pub guest_edges: u64,
    /// The maximum number of routed paths sharing a single host edge.
    pub max_congestion: u64,
    /// The mean load over host edges that carry at least one path.
    pub average_congestion: f64,
    /// The number of distinct host edges used by at least one path.
    pub used_host_edges: u64,
    /// The total routed path length (equals the sum of host distances between
    /// images of adjacent guest nodes).
    pub total_path_length: u64,
}

/// The next hop from `from` toward `to` under dimension-ordered routing
/// (lowest-index differing dimension first, shorter arc on toruses).
fn next_hop(host: &Grid, from: &Coord, to: &Coord) -> Option<Coord> {
    for j in 0..host.dim() {
        let (x, y) = (from.get(j), to.get(j));
        if x == y {
            continue;
        }
        let l = host.shape().radix(j);
        let step: i64 = if host.is_torus() {
            let forward = (y as i64 - x as i64).rem_euclid(l as i64);
            let backward = (x as i64 - y as i64).rem_euclid(l as i64);
            if forward <= backward {
                1
            } else {
                -1
            }
        } else if y > x {
            1
        } else {
            -1
        };
        let mut next = *from;
        next.set(j, (x as i64 + step).rem_euclid(l as i64) as u32);
        return Some(next);
    }
    None
}

/// Measures the congestion of `embedding` under dimension-ordered shortest
/// path routing of every guest edge.
///
/// # Errors
///
/// Returns [`EmbeddingError::TooLarge`] for guests above 2²⁶ nodes (the
/// per-edge hash map would dominate memory).
pub fn congestion(embedding: &Embedding) -> Result<CongestionReport> {
    const LIMIT: u64 = 1 << 26;
    if embedding.size() > LIMIT {
        return Err(EmbeddingError::TooLarge {
            size: embedding.size(),
            limit: LIMIT,
        });
    }
    let host = embedding.host();
    let mut loads: HashMap<(u64, u64), u64> = HashMap::new();
    let mut guest_edges = 0u64;
    let mut total_path_length = 0u64;
    for (a, b) in embedding.guest().edges() {
        guest_edges += 1;
        let mut current = embedding.map(a);
        let target = embedding.map(b);
        let mut current_index = host.index(&current).expect("valid host node");
        while let Some(next) = next_hop(host, &current, &target) {
            let next_index = host.index(&next).expect("valid host node");
            let key = (current_index.min(next_index), current_index.max(next_index));
            *loads.entry(key).or_insert(0) += 1;
            total_path_length += 1;
            current = next;
            current_index = next_index;
        }
    }
    let used_host_edges = loads.len() as u64;
    let max_congestion = loads.values().copied().max().unwrap_or(0);
    let average_congestion = if used_host_edges == 0 {
        0.0
    } else {
        total_path_length as f64 / used_host_edges as f64
    };
    Ok(CongestionReport {
        guest_edges,
        max_congestion,
        average_congestion,
        used_host_edges,
        total_path_length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::embed;
    use crate::basic::{embed_line_in, embed_ring_in};
    use crate::same_shape::embed_same_shape;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn unit_dilation_ring_embeddings_have_unit_congestion() {
        // A Hamiltonian-circuit embedding maps distinct guest edges to
        // distinct host edges, so no link is shared.
        for host in [
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[3, 3, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            let e = embed_ring_in(&host).unwrap();
            assert_eq!(e.dilation(), 1);
            let report = congestion(&e).unwrap();
            assert_eq!(report.max_congestion, 1, "host {host}");
            assert_eq!(report.guest_edges, host.size());
            assert_eq!(report.used_host_edges, host.size());
            assert_eq!(report.total_path_length, host.size());
        }
    }

    #[test]
    fn line_embeddings_have_unit_congestion() {
        let host = Grid::mesh(shape(&[3, 5]));
        let e = embed_line_in(&host).unwrap();
        let report = congestion(&e).unwrap();
        assert_eq!(report.max_congestion, 1);
        assert_eq!(report.guest_edges, host.size() - 1);
        assert!((report.average_congestion - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_embedding_congestion_is_one() {
        let mesh = Grid::mesh(shape(&[4, 4]));
        let torus = Grid::torus(shape(&[4, 4]));
        let e = Embedding::identity(mesh.clone(), torus).unwrap();
        let report = congestion(&e).unwrap();
        assert_eq!(report.max_congestion, 1);
        assert_eq!(report.guest_edges, mesh.num_edges());
    }

    #[test]
    fn total_path_length_matches_sum_of_distances() {
        let guest = Grid::torus(shape(&[3, 3]));
        let host = Grid::mesh(shape(&[3, 3]));
        let e = embed_same_shape(&guest, &host).unwrap();
        let report = congestion(&e).unwrap();
        let expected: u64 = guest
            .edges()
            .map(|(a, b)| host.distance(&e.map(a), &e.map(b)))
            .sum();
        assert_eq!(report.total_path_length, expected);
        assert!(report.max_congestion >= 1);
    }

    #[test]
    fn lowering_dimension_concentrates_load() {
        // Collapsing a 2-D mesh onto a line funnels many guest edges through
        // the middle links: congestion must exceed 1.
        let guest = Grid::mesh(shape(&[4, 4]));
        let host = Grid::line(16).unwrap();
        let e = embed(&guest, &host).unwrap();
        let report = congestion(&e).unwrap();
        assert!(report.max_congestion > 1);
        assert!(report.average_congestion >= 1.0);
        assert!(report.used_host_edges <= host.num_edges());
    }

    #[test]
    fn congestion_routes_respect_host_adjacency_lengths() {
        // Dimension-ordered routes are shortest routes, so the total path
        // length equals the total dilation mass for any embedding.
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::mesh(shape(&[4, 4]));
        let e = embed(&guest, &host).unwrap();
        let report = congestion(&e).unwrap();
        let (avg, edges) = e.average_dilation();
        assert_eq!(report.guest_edges, edges);
        assert!((report.total_path_length as f64 - avg * edges as f64).abs() < 1e-9);
    }
}
