//! Edge congestion of an embedding.
//!
//! The paper optimizes dilation only, but a downstream user placing a task
//! graph on a network usually also cares about **congestion**: when every
//! guest edge is routed along a shortest path in the host, how many routed
//! paths share the busiest host link? This module measures congestion under
//! deterministic dimension-ordered routing — the *same* next-hop rule the
//! `netsim` crate simulates, shared via [`topology::routing`], so the
//! congestion model and the simulator can never disagree about a route.
//!
//! Load accounting is allocation-free per hop: every host link has a dense
//! slot in a flat `Vec<u64>` (see [`topology::Grid::link_index`]), routes are
//! expanded per dimension by the batched hop emitter ([`for_each_hop`], one
//! direction/step-count computation per corrected dimension instead of one
//! next-hop scan per hop), and the parallel path gives each fork–join worker
//! its own flat load vector, merged elementwise at the end — so sequential
//! and parallel reports are bit-identical.

use topology::parallel::{parallel_map_reduce, recommended_threads};
use topology::routing::{for_each_hop, link_slot_of_hop};

use crate::embedding::Embedding;
use crate::error::{EmbeddingError, Result};

/// Aggregate congestion statistics for an embedding.
#[derive(Clone, Debug, PartialEq)]
pub struct CongestionReport {
    /// The number of routed guest edges.
    pub guest_edges: u64,
    /// The maximum number of routed paths sharing a single host edge.
    pub max_congestion: u64,
    /// The mean load over host edges that carry at least one path.
    pub average_congestion: f64,
    /// The number of distinct host edges used by at least one path.
    pub used_host_edges: u64,
    /// The total routed path length (equals the sum of host distances between
    /// images of adjacent guest nodes).
    pub total_path_length: u64,
}

/// Per-worker sweep state: one flat load counter per host link plus the
/// scalar aggregates. Merging is elementwise addition.
struct Loads {
    per_link: Vec<u64>,
    guest_edges: u64,
    total_path_length: u64,
}

/// Routes every guest edge whose chunk node is in `range` and accumulates
/// per-link loads into a flat vector indexed by [`Grid::link_index`].
fn route_chunk(
    embedding: &Embedding,
    range: std::ops::Range<u64>,
    dims: &[usize],
) -> Result<Loads> {
    use std::cell::Cell;

    let host = embedding.host();
    let mut loads = Loads {
        per_link: vec![0u64; host.link_count() as usize],
        guest_edges: 0,
        total_path_length: 0,
    };
    let mut failure: Option<EmbeddingError> = None;
    // The current node's host index (or None for an invalid image), handed
    // from the node callback to the edge callbacks that follow it.
    let fx_index = Cell::new(None::<u64>);
    embedding.for_each_mapped(
        range,
        |_x, fx| fx_index.set(host.index(fx).ok()),
        |x, y, fx, fy| {
            if failure.is_some() {
                return;
            }
            loads.guest_edges += 1;
            let index = match fx_index.get() {
                Some(index) => index,
                None => {
                    failure = Some(EmbeddingError::InvalidImage {
                        guest: x,
                        image: Box::new(*fx),
                    });
                    return;
                }
            };
            if !host.contains(fy) {
                failure = Some(EmbeddingError::InvalidImage {
                    guest: y,
                    image: Box::new(*fy),
                });
                return;
            }
            let Loads {
                per_link,
                total_path_length,
                ..
            } = &mut loads;
            for_each_hop(host, fx, index, fy, dims, |hop, before, after| {
                per_link[link_slot_of_hop(host, hop, before, after) as usize] += 1;
                *total_path_length += 1;
            });
        },
    );
    match failure {
        Some(error) => Err(error),
        None => Ok(loads),
    }
}

fn report_from(loads: Loads) -> CongestionReport {
    let mut used_host_edges = 0u64;
    let mut max_congestion = 0u64;
    for &load in &loads.per_link {
        if load > 0 {
            used_host_edges += 1;
            max_congestion = max_congestion.max(load);
        }
    }
    let average_congestion = if used_host_edges == 0 {
        0.0
    } else {
        loads.total_path_length as f64 / used_host_edges as f64
    };
    CongestionReport {
        guest_edges: loads.guest_edges,
        max_congestion,
        average_congestion,
        used_host_edges,
        total_path_length: loads.total_path_length,
    }
}

const LIMIT: u64 = 1 << 26;
/// Cap on `host.link_count()`: one flat load vector is 8 bytes per link, so
/// 2²⁹ slots bound a worker's scratch at 4 GiB even for high-dimension
/// hosts (a 26-dimensional hypercube at the node limit would otherwise
/// allocate ~14 GiB).
const LINK_LIMIT: u64 = 1 << 29;

fn check_size(embedding: &Embedding) -> Result<()> {
    if embedding.size() > LIMIT {
        return Err(EmbeddingError::TooLarge {
            size: embedding.size(),
            limit: LIMIT,
        });
    }
    // try_link_count: a shape whose d·n overflows u64 is certainly over the
    // limit, and the unchecked count would wrap to a small number here.
    let links = embedding.host().try_link_count().unwrap_or(u64::MAX);
    if links > LINK_LIMIT {
        return Err(EmbeddingError::TooLarge {
            size: links,
            limit: LINK_LIMIT,
        });
    }
    Ok(())
}

/// Measures the congestion of `embedding` under dimension-ordered shortest
/// path routing of every guest edge, using [`recommended_threads`] workers.
///
/// # Errors
///
/// Returns [`EmbeddingError::TooLarge`] for guests above 2²⁶ nodes (the
/// flat per-link load vectors would dominate memory), and
/// [`EmbeddingError::InvalidImage`] if the mapping function produces a
/// coordinate outside the host.
pub fn congestion(embedding: &Embedding) -> Result<CongestionReport> {
    congestion_parallel(embedding, 0)
}

/// Measures congestion sequentially — the single-chunk reference sweep used
/// to test the parallel path.
///
/// # Errors
///
/// Same as [`congestion`].
pub fn congestion_sequential(embedding: &Embedding) -> Result<CongestionReport> {
    check_size(embedding)?;
    let dims: Vec<usize> = (0..embedding.host().dim()).collect();
    let loads = route_chunk(embedding, 0..embedding.size(), &dims)?;
    Ok(report_from(loads))
}

/// Measures congestion with `threads` fork–join workers (`0` = automatic),
/// each accumulating into its own flat load vector, merged elementwise at
/// the end. The report is bit-identical to [`congestion_sequential`]'s for
/// any thread count.
///
/// The worker count is additionally capped so the per-worker load vectors
/// stay within a fixed scratch budget on very large hosts.
///
/// # Errors
///
/// Same as [`congestion`].
pub fn congestion_parallel(embedding: &Embedding, threads: usize) -> Result<CongestionReport> {
    check_size(embedding)?;
    let host = embedding.host();
    let threads = if threads == 0 {
        recommended_threads()
    } else {
        threads
    };
    // Each worker owns 8 bytes per host link; stay under ~2 GiB of scratch.
    const SCRATCH_BUDGET_BYTES: u64 = 2 << 30;
    let per_worker_bytes = (host.link_count() * 8).max(1);
    let threads = threads.min(((SCRATCH_BUDGET_BYTES / per_worker_bytes).max(1)) as usize);

    let dims: Vec<usize> = (0..host.dim()).collect();
    // parallel_map_reduce's identity must be cheap; represent "no loads yet"
    // as an empty vector and let merging resize.
    let merged = parallel_map_reduce(
        embedding.size(),
        threads,
        Ok(Loads {
            per_link: Vec::new(),
            guest_edges: 0,
            total_path_length: 0,
        }),
        |range| route_chunk(embedding, range, &dims),
        |a, b| {
            let (mut a, b) = match (a, b) {
                (Err(e), _) | (_, Err(e)) => return Err(e),
                (Ok(a), Ok(b)) => (a, b),
            };
            if a.per_link.len() < b.per_link.len() {
                return Ok(Loads {
                    per_link: merge_loads(b.per_link, &a.per_link),
                    guest_edges: a.guest_edges + b.guest_edges,
                    total_path_length: a.total_path_length + b.total_path_length,
                });
            }
            a.per_link = merge_loads(a.per_link, &b.per_link);
            a.guest_edges += b.guest_edges;
            a.total_path_length += b.total_path_length;
            Ok(a)
        },
    )?;
    Ok(report_from(merged))
}

fn merge_loads(mut into: Vec<u64>, from: &[u64]) -> Vec<u64> {
    for (slot, &load) in from.iter().enumerate() {
        into[slot] += load;
    }
    into
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::embed;
    use crate::basic::{embed_line_in, embed_ring_in};
    use crate::same_shape::embed_same_shape;
    use topology::{Grid, Shape};

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn unit_dilation_ring_embeddings_have_unit_congestion() {
        // A Hamiltonian-circuit embedding maps distinct guest edges to
        // distinct host edges, so no link is shared.
        for host in [
            Grid::mesh(shape(&[4, 2, 3])),
            Grid::torus(shape(&[3, 3, 3])),
            Grid::hypercube(4).unwrap(),
        ] {
            let e = embed_ring_in(&host).unwrap();
            assert_eq!(e.dilation(), 1);
            let report = congestion(&e).unwrap();
            assert_eq!(report.max_congestion, 1, "host {host}");
            assert_eq!(report.guest_edges, host.size());
            assert_eq!(report.used_host_edges, host.size());
            assert_eq!(report.total_path_length, host.size());
        }
    }

    #[test]
    fn line_embeddings_have_unit_congestion() {
        let host = Grid::mesh(shape(&[3, 5]));
        let e = embed_line_in(&host).unwrap();
        let report = congestion(&e).unwrap();
        assert_eq!(report.max_congestion, 1);
        assert_eq!(report.guest_edges, host.size() - 1);
        assert!((report.average_congestion - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_embedding_congestion_is_one() {
        let mesh = Grid::mesh(shape(&[4, 4]));
        let torus = Grid::torus(shape(&[4, 4]));
        let e = Embedding::identity(mesh.clone(), torus).unwrap();
        let report = congestion(&e).unwrap();
        assert_eq!(report.max_congestion, 1);
        assert_eq!(report.guest_edges, mesh.num_edges());
    }

    #[test]
    fn total_path_length_matches_sum_of_distances() {
        let guest = Grid::torus(shape(&[3, 3]));
        let host = Grid::mesh(shape(&[3, 3]));
        let e = embed_same_shape(&guest, &host).unwrap();
        let report = congestion(&e).unwrap();
        let expected: u64 = guest
            .edges()
            .map(|(a, b)| host.distance(&e.map(a), &e.map(b)))
            .sum();
        assert_eq!(report.total_path_length, expected);
        assert!(report.max_congestion >= 1);
    }

    #[test]
    fn lowering_dimension_concentrates_load() {
        // Collapsing a 2-D mesh onto a line funnels many guest edges through
        // the middle links: congestion must exceed 1.
        let guest = Grid::mesh(shape(&[4, 4]));
        let host = Grid::line(16).unwrap();
        let e = embed(&guest, &host).unwrap();
        let report = congestion(&e).unwrap();
        assert!(report.max_congestion > 1);
        assert!(report.average_congestion >= 1.0);
        assert!(report.used_host_edges <= host.num_edges());
    }

    #[test]
    fn congestion_routes_respect_host_adjacency_lengths() {
        // Dimension-ordered routes are shortest routes, so the total path
        // length equals the total dilation mass for any embedding.
        let guest = Grid::hypercube(4).unwrap();
        let host = Grid::mesh(shape(&[4, 4]));
        let e = embed(&guest, &host).unwrap();
        let report = congestion(&e).unwrap();
        let (avg, edges) = e.average_dilation();
        assert_eq!(report.guest_edges, edges);
        assert!((report.total_path_length as f64 - avg * edges as f64).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_sequential_reports_are_bit_identical() {
        for (guest, host) in [
            (
                Grid::torus(shape(&[4, 2, 3])),
                Grid::mesh(shape(&[4, 2, 3])),
            ),
            (Grid::mesh(shape(&[5, 3])), Grid::torus(shape(&[5, 3]))),
            (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
        ] {
            let e = embed(&guest, &host).unwrap();
            let sequential = congestion_sequential(&e).unwrap();
            for threads in [1, 2, 3, 8, 0] {
                let parallel = congestion_parallel(&e, threads).unwrap();
                assert_eq!(parallel, sequential, "threads={threads} {guest}->{host}");
            }
        }
    }

    #[test]
    fn even_radix_ties_route_along_the_forward_arc() {
        // Guest line (0..6) on a 6-ring. Exactly one guest edge, (0,1), maps
        // to an antipodal host pair (0,3) where both arcs have length 3; the
        // shared rule must take the forward arc 0→1→2→3. Routing it forward
        // uses the links {0-1},{1-2},{2-3}, and together with the other four
        // routes every one of the 6 ring links carries load; the backward arc
        // 0→5→4→3 would instead leave links {1-2} and {2-3} partly idle and
        // only 5 links used.
        let guest = Grid::line(6).unwrap();
        let host = Grid::ring(6).unwrap();
        let table = [0u32, 3, 4, 5, 1, 2];
        let e = Embedding::new(
            guest,
            host,
            "single-tied-edge",
            std::sync::Arc::new(move |x| {
                topology::Coord::from_slice(&[table[x as usize]]).unwrap()
            }),
        )
        .unwrap();
        let report = congestion(&e).unwrap();
        assert_eq!(report.guest_edges, 5);
        assert_eq!(report.total_path_length, 8);
        assert_eq!(report.max_congestion, 2);
        // Forward tie-break touches all 6 ring links; backward only 5.
        assert_eq!(report.used_host_edges, 6);
    }

    #[test]
    fn invalid_images_error_instead_of_panicking() {
        let line = Grid::line(4).unwrap();
        let host = Grid::line(4).unwrap();
        let e = Embedding::new(
            line,
            host,
            "out-of-host",
            std::sync::Arc::new(|x| topology::Coord::from_slice(&[x as u32 * 2]).unwrap()),
        )
        .unwrap();
        assert!(matches!(
            congestion(&e),
            Err(EmbeddingError::InvalidImage { .. })
        ));
        assert!(matches!(
            congestion_sequential(&e),
            Err(EmbeddingError::InvalidImage { .. })
        ));
    }
}
