//! The placement server: a TCP listener answering protocol requests from a
//! shared [`PlanRegistry`].
//!
//! One thread accepts; each connection gets its own thread (queries are
//! sub-microsecond once a plan is cached, so per-connection threads are
//! plenty below a few hundred clients — the load generator drives exactly
//! this shape). Request handling is panic-free by construction: every
//! operand is validated into a typed error, lookups use the fallible
//! embedding paths, and an `ERR` response leaves the connection open.
//! Only framing violations (oversized length, invalid UTF-8, mid-frame EOF)
//! drop a connection.
//!
//! Shutdown uses the listener itself: [`ServerHandle::shutdown`] sets a
//! flag and dials the listening address so the blocked `accept` wakes,
//! observes the flag, and exits. Worker threads exit when their peers hang
//! up; the handle joins the accept thread only, so shutdown never waits on
//! a slow client.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::{EmbdError, Result};
use crate::proto::{read_frame, write_frame, Request};
use crate::registry::PlanRegistry;

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<PlanRegistry>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `registry` until [`ServerHandle::shutdown`].
///
/// # Errors
///
/// [`EmbdError::Io`] when the address cannot be bound.
pub fn spawn(addr: &str, registry: Arc<PlanRegistry>) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let stop = stop.clone();
        let registry = registry.clone();
        std::thread::spawn(move || accept_loop(listener, registry, stop))
    };
    Ok(ServerHandle {
        addr,
        registry,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (with the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server answers from.
    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    /// Stops accepting, wakes the accept thread, and joins it. Connections
    /// already being served wind down as their clients disconnect.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocked accept; if the dial fails the listener is
        // already gone and the thread is on its way out.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<PlanRegistry>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // A failed accept (peer gone before we got to it) is the
            // peer's problem; keep serving.
            continue;
        };
        let registry = registry.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &registry);
        });
    }
}

/// Serves one connection until clean close or framing violation.
fn serve_connection(mut stream: TcpStream, registry: &PlanRegistry) -> Result<()> {
    stream.set_nodelay(true)?;
    while let Some(line) = read_frame(&mut stream)? {
        let response = match respond(&line, registry) {
            Ok(payload) => format!("OK {payload}"),
            Err(error) => format!("ERR {error}"),
        };
        write_frame(&mut stream, &response)?;
    }
    Ok(())
}

/// Computes the payload for one request line. Every failure — parse,
/// planner, out-of-range node — comes back as a typed error for the `ERR`
/// reply; nothing in this path can panic on untrusted input.
fn respond(line: &str, registry: &PlanRegistry) -> Result<String> {
    match Request::parse(line)? {
        Request::Map { v, guest, host } => {
            let entry = registry.get_or_build(&guest, &host)?;
            if v >= guest.size() {
                return Err(EmbdError::Protocol {
                    message: format!("node {v} outside the guest's {} nodes", guest.size()),
                });
            }
            let image = entry
                .embedding
                .try_map_index(v)
                .map_err(|e| EmbdError::Plan(e.into()))?;
            Ok(image.to_string())
        }
        Request::Plan { guest, host } => {
            let entry = registry.get_or_build(&guest, &host)?;
            Ok(entry.text.clone())
        }
        Request::Stats => {
            let stats = registry.stats();
            Ok(format!(
                "plans={} hits={} misses={}",
                stats.plans, stats.hits, stats.misses
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respond_handles_requests_and_rejects_bad_input() {
        let registry = PlanRegistry::new();
        // A valid MAP query answers the direct planner result.
        let payload = respond("MAP 5 torus:4x2x3 mesh:4x6", &registry).unwrap();
        let guest = embeddings::plan::parse_grid_spec("torus:4x2x3").unwrap();
        let host = embeddings::plan::parse_grid_spec("mesh:4x6").unwrap();
        let direct = embeddings::auto::embed(&guest, &host).unwrap();
        assert_eq!(payload, direct.map_index(5).to_string());
        // PLAN serves the serialized plan.
        let plan_text = respond("PLAN torus:4x2x3 mesh:4x6", &registry).unwrap();
        assert!(plan_text.starts_with("plan v1 "));
        // Out-of-range node, malformed verb, impossible pair: typed errors.
        assert!(respond("MAP 24 torus:4x2x3 mesh:4x6", &registry).is_err());
        assert!(respond("MAPP 1 torus:4x2x3 mesh:4x6", &registry).is_err());
        assert!(respond("PLAN mesh:2x2 mesh:5", &registry).is_err());
        // STATS reflects the traffic above (2 hits: the second PLAN pair
        // failed before caching; MAP built, PLAN hit, MAP 24 hit).
        let stats = respond("STATS", &registry).unwrap();
        assert_eq!(stats, "plans=1 hits=2 misses=2");
    }
}
