//! A blocking client for the placement service.
//!
//! One [`Client`] wraps one connection and issues one request at a time
//! (the protocol is strictly request/response, so pipelining would buy
//! nothing but reordering bugs). Clients are cheap; open one per thread.

use std::net::{TcpStream, ToSocketAddrs};

use embeddings::plan::{format_grid_spec, Plan};
use topology::Grid;

use crate::error::{EmbdError, Result};
use crate::proto::{parse_response, read_frame, write_frame, Request};
use crate::registry::RegistryStats;

/// A blocking connection to a placement server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`EmbdError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Asks where guest node `v` of `guest` lands in `host`: the remote
    /// `MAP` query, answering the host node index.
    ///
    /// # Errors
    ///
    /// [`EmbdError::Remote`] for server-side rejections (unsupported pair,
    /// out-of-range node), [`EmbdError::Io`] / [`EmbdError::Protocol`] for
    /// transport failures.
    pub fn map(&mut self, guest: &Grid, host: &Grid, v: u64) -> Result<u64> {
        let payload = self.round_trip(
            &Request::Map {
                v,
                guest: guest.clone(),
                host: host.clone(),
            }
            .to_line(),
        )?;
        payload.parse::<u64>().map_err(|_| EmbdError::Protocol {
            message: format!("MAP answered non-index {payload:?}"),
        })
    }

    /// Fetches the full serialized plan for the pair and parses it — after
    /// which [`Plan::to_embedding`] answers every node locally.
    ///
    /// # Errors
    ///
    /// As [`Client::map`], plus [`EmbdError::Plan`] when the served text
    /// does not parse back into a plan.
    pub fn plan(&mut self, guest: &Grid, host: &Grid) -> Result<Plan> {
        let payload = self.round_trip(&format!(
            "PLAN {} {}",
            format_grid_spec(guest),
            format_grid_spec(host)
        ))?;
        Ok(Plan::parse(&payload)?)
    }

    /// Fetches the server's registry counters.
    ///
    /// # Errors
    ///
    /// As [`Client::map`]; also [`EmbdError::Protocol`] when the payload
    /// does not have the `plans=N hits=N misses=N` shape.
    pub fn stats(&mut self) -> Result<RegistryStats> {
        let payload = self.round_trip("STATS")?;
        let mut numbers = [0u64; 3];
        let mut fields = payload.split(' ');
        for (slot, prefix) in numbers.iter_mut().zip(["plans=", "hits=", "misses="]) {
            *slot = fields
                .next()
                .and_then(|f| f.strip_prefix(prefix))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| EmbdError::Protocol {
                    message: format!("malformed STATS payload {payload:?}"),
                })?;
        }
        Ok(RegistryStats {
            plans: numbers[0],
            hits: numbers[1],
            misses: numbers[2],
        })
    }

    /// Sends one raw request line and returns the `OK` payload — the escape
    /// hatch the loopback tests use to probe server error handling.
    ///
    /// # Errors
    ///
    /// As [`Client::map`].
    pub fn round_trip(&mut self, line: &str) -> Result<String> {
        write_frame(&mut self.stream, line)?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| EmbdError::Protocol {
            message: "server closed the connection mid-request".into(),
        })?;
        parse_response(&reply)
    }
}
