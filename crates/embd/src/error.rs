//! Error types for the placement service.

use core::fmt;

use embeddings::PlanError;

/// Why a service operation (frame I/O, request handling, a client call)
/// failed.
#[derive(Debug)]
pub enum EmbdError {
    /// An underlying socket or stream error.
    Io(std::io::Error),
    /// A frame or message violated the wire protocol (oversized frame,
    /// invalid UTF-8, unknown verb, malformed operand).
    Protocol {
        /// What went wrong.
        message: String,
    },
    /// The server answered a well-formed request with an `ERR` response —
    /// the remote counterpart of a typed local error.
    Remote {
        /// The server's error message.
        message: String,
    },
    /// A plan could not be built, parsed, or rebuilt.
    Plan(PlanError),
}

impl fmt::Display for EmbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbdError::Io(e) => write!(f, "i/o error: {e}"),
            EmbdError::Protocol { message } => write!(f, "protocol error: {message}"),
            EmbdError::Remote { message } => write!(f, "server error: {message}"),
            EmbdError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EmbdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbdError::Io(e) => Some(e),
            EmbdError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EmbdError {
    fn from(value: std::io::Error) -> Self {
        EmbdError::Io(value)
    }
}

impl From<PlanError> for EmbdError {
    fn from(value: PlanError) -> Self {
        EmbdError::Plan(value)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EmbdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = EmbdError::Protocol {
            message: "frame too large".into(),
        };
        assert!(e.to_string().contains("frame too large"));
        let e = EmbdError::Remote {
            message: "unsupported pair".into(),
        };
        assert!(e.to_string().contains("server error"));
        let e: EmbdError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let e: EmbdError = PlanError::Parse {
            offset: 3,
            message: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("byte 3"));
    }
}
