//! The `embd` command: serve placements, or query a running server.
//!
//! ```text
//! embd serve [--addr HOST:PORT]             # default 127.0.0.1:4087
//! embd map   <v> <guest> <host> [--addr A]  # print the host node index
//! embd plan  <guest> <host> [--addr A]      # print the serialized plan
//! embd stats [--addr A]                     # print registry counters
//! ```
//!
//! Graph specs are `torus:4x2x3` / `mesh:4x6`. `serve` prints the bound
//! address on stdout (one line) so scripts can bind port 0 and discover the
//! port. Exit codes: 0 success, 1 request failed, 2 usage error.

use std::process::ExitCode;
use std::sync::Arc;

use embd::{Client, PlanRegistry};
use embeddings::plan::parse_grid_spec;
use topology::Grid;

const DEFAULT_ADDR: &str = "127.0.0.1:4087";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Request(message)) => {
            eprintln!("embd: {message}");
            ExitCode::from(1)
        }
        Err(Failure::Usage(message)) => {
            eprintln!("embd: {message}");
            eprintln!("usage: embd serve|map|plan|stats [operands] [--addr HOST:PORT]");
            ExitCode::from(2)
        }
    }
}

enum Failure {
    /// The request was well-formed but failed (connection, server error).
    Request(String),
    /// The command line itself is wrong.
    Usage(String),
}

fn run(args: &[String]) -> Result<(), Failure> {
    let (addr, positional) = split_addr(args)?;
    let mut positional = positional.into_iter();
    let verb = positional
        .next()
        .ok_or(Failure::Usage("no command".into()))?;
    let positional: Vec<String> = positional.collect();
    match verb.as_str() {
        "serve" => {
            expect_operands(&positional, 0)?;
            serve(&addr)
        }
        "map" => {
            let [v, guest, host] = positional.as_slice() else {
                return Err(Failure::Usage("map takes <v> <guest> <host>".into()));
            };
            let v: u64 = v
                .parse()
                .map_err(|_| Failure::Usage(format!("bad node index {v:?}")))?;
            let image = connect(&addr)?
                .map(&grid(guest)?, &grid(host)?, v)
                .map_err(|e| Failure::Request(e.to_string()))?;
            println!("{image}");
            Ok(())
        }
        "plan" => {
            let [guest, host] = positional.as_slice() else {
                return Err(Failure::Usage("plan takes <guest> <host>".into()));
            };
            let plan = connect(&addr)?
                .plan(&grid(guest)?, &grid(host)?)
                .map_err(|e| Failure::Request(e.to_string()))?;
            println!("{plan}");
            Ok(())
        }
        "stats" => {
            expect_operands(&positional, 0)?;
            let stats = connect(&addr)?
                .stats()
                .map_err(|e| Failure::Request(e.to_string()))?;
            println!(
                "plans={} hits={} misses={}",
                stats.plans, stats.hits, stats.misses
            );
            Ok(())
        }
        other => Err(Failure::Usage(format!("unknown command {other:?}"))),
    }
}

fn serve(addr: &str) -> Result<(), Failure> {
    let handle = embd::spawn(addr, Arc::new(PlanRegistry::new()))
        .map_err(|e| Failure::Request(format!("cannot bind {addr}: {e}")))?;
    println!("{}", handle.addr());
    // Serve until killed; the handle's Drop handles the (unreachable in
    // practice) unwind path.
    loop {
        std::thread::park();
    }
}

fn connect(addr: &str) -> Result<Client, Failure> {
    Client::connect(addr).map_err(|e| Failure::Request(format!("cannot connect to {addr}: {e}")))
}

fn grid(spec: &str) -> Result<Grid, Failure> {
    parse_grid_spec(spec).map_err(|e| Failure::Usage(format!("bad graph spec {spec:?}: {e}")))
}

/// Pulls `--addr VALUE` out of the argument list, leaving the positionals.
fn split_addr(args: &[String]) -> Result<(String, Vec<String>), Failure> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--addr" {
            addr = iter
                .next()
                .ok_or(Failure::Usage("--addr needs a value".into()))?
                .clone();
        } else if let Some(value) = arg.strip_prefix("--addr=") {
            addr = value.to_string();
        } else if arg.starts_with("--") {
            return Err(Failure::Usage(format!("unknown flag {arg:?}")));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((addr, positional))
}

fn expect_operands(positional: &[String], count: usize) -> Result<(), Failure> {
    if positional.len() == count {
        Ok(())
    } else {
        Err(Failure::Usage(format!(
            "expected {count} operands, got {}",
            positional.len()
        )))
    }
}
