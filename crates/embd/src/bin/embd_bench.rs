//! `embd-bench`: a load generator for the placement server.
//!
//! Spawns an in-process loopback server (or targets `--addr`), drives N
//! concurrent client connections issuing `MAP` queries over a rotating set
//! of paper-family graph pairs, and reports per-query latency (p50/p99) and
//! aggregate queries/s.
//!
//! ```text
//! embd-bench [--clients N] [--queries M] [--addr HOST:PORT]
//!            [--check] [--json PATH] [--seed S]
//! ```
//!
//! * `--clients` — concurrent connections (default 4);
//! * `--queries` — queries per client (default 2500);
//! * `--check` — precompute each pair's placement with a direct
//!   [`embeddings::auto::embed`] and compare every wire answer against it;
//!   any mismatch fails the run. This is the differential acceptance mode:
//!   the service must be bit-identical to the library;
//! * `--json` — also write the summary as a `BENCH_embd.json`-shaped
//!   document (the bench-regression gate's input).
//!
//! Exit codes: 0 success, 1 when any query errored or (under `--check`)
//! any answer mismatched.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use embd::{Client, PlanRegistry};
use embeddings::plan::{format_grid_spec, parse_grid_spec};
use topology::Grid;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match Options::parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("embd-bench: {message}");
            eprintln!(
                "usage: embd-bench [--clients N] [--queries M] [--addr HOST:PORT] \
                 [--check] [--json PATH] [--seed S]"
            );
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("embd-bench: {message}");
            ExitCode::from(1)
        }
    }
}

struct Options {
    clients: usize,
    queries: u64,
    addr: Option<String>,
    check: bool,
    json: Option<String>,
    seed: u64,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut options = Options {
            clients: 4,
            queries: 2500,
            addr: None,
            check: false,
            json: None,
            seed: 7,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--clients" => {
                    options.clients = value("--clients")?
                        .parse()
                        .map_err(|_| "bad --clients value".to_string())?;
                }
                "--queries" => {
                    options.queries = value("--queries")?
                        .parse()
                        .map_err(|_| "bad --queries value".to_string())?;
                }
                "--addr" => options.addr = Some(value("--addr")?),
                "--check" => options.check = true,
                "--json" => options.json = Some(value("--json")?),
                "--seed" => {
                    options.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "bad --seed value".to_string())?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if options.clients == 0 || options.queries == 0 {
            return Err("--clients and --queries must be positive".into());
        }
        Ok(options)
    }
}

/// The query mix: paper shape families of assorted sizes, each `(guest,
/// host)` answerable by the planner.
fn pairs() -> Vec<(Grid, Grid)> {
    [
        ("torus:4x2x3", "mesh:4x6"),
        ("mesh:4x6", "torus:4x2x3"),
        ("torus:8x8", "mesh:8x8"),
        ("mesh:16x4", "torus:2x2x2x2x2x2"),
        ("torus:6x4", "torus:24"),
        ("mesh:4x3x2", "mesh:12x2"),
    ]
    .into_iter()
    .map(|(g, h)| {
        (
            parse_grid_spec(g).expect("well-formed spec"),
            parse_grid_spec(h).expect("well-formed spec"),
        )
    })
    .collect()
}

/// Per-client results: latencies in nanoseconds, plus error and mismatch
/// counts.
struct ClientOutcome {
    latencies_ns: Vec<u64>,
    errors: u64,
    mismatches: u64,
}

fn run(options: &Options) -> Result<(), String> {
    // Spawn the loopback server unless aimed at a running one.
    let server = match &options.addr {
        Some(_) => None,
        None => Some(
            embd::spawn("127.0.0.1:0", Arc::new(PlanRegistry::new()))
                .map_err(|e| format!("cannot spawn loopback server: {e}"))?,
        ),
    };
    let addr = match (&options.addr, &server) {
        (Some(addr), _) => addr.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("no addr and no server"),
    };
    let pairs = pairs();
    // Under --check, precompute the reference tables once, directly from
    // the library, with no service in the loop.
    let reference: Vec<Vec<u64>> = if options.check {
        pairs
            .iter()
            .map(|(guest, host)| {
                embeddings::auto::embed(guest, host)
                    .and_then(|e| e.to_table())
                    .map_err(|e| format!("reference embed failed: {e}"))
            })
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    let reference = Arc::new(reference);
    let pairs = Arc::new(pairs);

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|c| {
                let pairs = pairs.clone();
                let reference = reference.clone();
                let addr = addr.clone();
                let seed = options.seed.wrapping_add(c as u64);
                let queries = options.queries;
                let check = options.check;
                scope.spawn(move || drive_client(&addr, &pairs, &reference, queries, seed, check))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(handle) = server {
        handle.shutdown();
    }

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let errors: u64 = outcomes.iter().map(|o| o.errors).sum();
    let mismatches: u64 = outcomes.iter().map(|o| o.mismatches).sum();
    let queries = latencies.len() as u64;
    let qps = queries as f64 / elapsed;
    let p50_us = percentile_ns(&latencies, 50) as f64 / 1_000.0;
    let p99_us = percentile_ns(&latencies, 99) as f64 / 1_000.0;

    println!(
        "embd-bench: {queries} queries, {} clients, {:.2}s wall",
        options.clients, elapsed
    );
    println!("  queries/s : {qps:.0}");
    println!("  p50       : {p50_us:.1} us");
    println!("  p99       : {p99_us:.1} us");
    println!("  errors    : {errors}");
    if options.check {
        println!("  mismatches: {mismatches} (checked against direct auto::embed)");
    }

    if let Some(path) = &options.json {
        let json = format!(
            "{{\n  \"benchmark\": \"embd_load\",\n  \"config\": {{\n    \"clients\": {},\n    \
             \"queries_per_client\": {},\n    \"pairs\": {},\n    \"check\": {}\n  }},\n  \
             \"summary\": {{\n    \"queries\": {},\n    \"errors\": {},\n    \
             \"mismatches\": {},\n    \"queries_per_second\": {:.1},\n    \
             \"p50_us\": {:.1},\n    \"p99_us\": {:.1}\n  }}\n}}\n",
            options.clients,
            options.queries,
            pairs.len(),
            options.check,
            queries,
            errors,
            mismatches,
            qps,
            p50_us,
            p99_us,
        );
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("  wrote {path}");
    }

    if errors > 0 {
        return Err(format!("{errors} queries failed"));
    }
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} answers disagreed with direct auto::embed"
        ));
    }
    Ok(())
}

/// One client: `queries` MAP calls over pseudo-random (pair, node) picks.
fn drive_client(
    addr: &str,
    pairs: &[(Grid, Grid)],
    reference: &[Vec<u64>],
    queries: u64,
    seed: u64,
    check: bool,
) -> Result<ClientOutcome, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut outcome = ClientOutcome {
        latencies_ns: Vec::with_capacity(queries as usize),
        errors: 0,
        mismatches: 0,
    };
    let mut state = seed;
    for _ in 0..queries {
        let pick = splitmix64(&mut state);
        let (guest, host) = &pairs[(pick % pairs.len() as u64) as usize];
        let v = splitmix64(&mut state) % guest.size();
        let start = Instant::now();
        match client.map(guest, host, v) {
            Ok(image) => {
                outcome.latencies_ns.push(start.elapsed().as_nanos() as u64);
                if check {
                    let table = &reference[(pick % pairs.len() as u64) as usize];
                    if table[v as usize] != image {
                        outcome.mismatches += 1;
                        eprintln!(
                            "mismatch: MAP {v} {} {} answered {image}, expected {}",
                            format_grid_spec(guest),
                            format_grid_spec(host),
                            table[v as usize]
                        );
                    }
                }
            }
            Err(error) => {
                outcome.errors += 1;
                eprintln!("query failed: {error}");
            }
        }
    }
    Ok(outcome)
}

/// The value at the `p`-th percentile of sorted `latencies` (nearest-rank).
fn percentile_ns(latencies: &[u64], p: u64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    let rank = (latencies.len() as u64 * p).div_ceil(100).max(1) as usize;
    latencies[rank.min(latencies.len()) - 1]
}

/// splitmix64: the standard 64-bit mixing step (public domain constants),
/// kept local so the load generator depends only on the service crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
