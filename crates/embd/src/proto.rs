//! The wire protocol: length-prefixed text frames and request/response
//! grammar.
//!
//! # Framing
//!
//! Every message — in either direction — is one frame: a 4-byte big-endian
//! length followed by that many bytes of UTF-8 text. Frames are capped at
//! [`MAX_FRAME`] bytes; an oversized length prefix is a protocol error and
//! the connection is dropped without attempting to read (or allocate) the
//! body, so a hostile peer cannot balloon the server's memory.
//!
//! # Requests
//!
//! ```text
//! MAP <v> <guest-spec> <host-spec>    -> OK <host-index>
//! PLAN <guest-spec> <host-spec>       -> OK <plan-text>
//! STATS                               -> OK plans=<n> hits=<h> misses=<m>
//! ```
//!
//! A graph spec is `torus:4x2x3` / `mesh:4x6` (see
//! [`embeddings::plan::parse_grid_spec`]). `MAP` answers the host node index
//! the guest node `v` is placed on — the paper's `O(d)` placement query as a
//! remote call. `PLAN` answers the serialized [`embeddings::Plan`], so a
//! client can rebuild the whole mapping locally and stop asking per node.
//!
//! # Responses
//!
//! `OK <payload>` or `ERR <message>`. Malformed requests and unsupported
//! pairs answer `ERR` and the connection stays open; only framing
//! violations drop it.

use std::io::{Read, Write};

use embeddings::plan::{format_grid_spec, parse_grid_spec};
use topology::Grid;

use crate::error::{EmbdError, Result};

/// Upper bound on a frame body, in bytes (16 MiB). Generous for any plan a
/// service-sized graph produces, tiny next to what a forged length prefix
/// could otherwise make the receiver allocate.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the UTF-8 payload.
///
/// # Errors
///
/// [`EmbdError::Protocol`] when `text` exceeds [`MAX_FRAME`];
/// [`EmbdError::Io`] on stream errors.
pub fn write_frame(stream: &mut impl Write, text: &str) -> Result<()> {
    if text.len() > MAX_FRAME {
        return Err(EmbdError::Protocol {
            message: format!(
                "frame of {} bytes exceeds the {MAX_FRAME} limit",
                text.len()
            ),
        });
    }
    stream.write_all(&(text.len() as u32).to_be_bytes())?;
    stream.write_all(text.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Reads one frame and returns its payload, or `None` on a clean EOF at a
/// frame boundary (the peer closed the connection between messages).
///
/// # Errors
///
/// [`EmbdError::Protocol`] for an oversized length or invalid UTF-8;
/// [`EmbdError::Io`] for stream errors, including EOF mid-frame.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(EmbdError::Protocol {
            message: format!("frame of {len} bytes exceeds the {MAX_FRAME} limit"),
        });
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| EmbdError::Protocol {
            message: "frame is not valid UTF-8".into(),
        })
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Where does guest node `v` land? Answers the host node index.
    Map {
        /// The guest node index to place.
        v: u64,
        /// The guest graph.
        guest: Grid,
        /// The host graph.
        host: Grid,
    },
    /// The full serialized plan for the pair.
    Plan {
        /// The guest graph.
        guest: Grid,
        /// The host graph.
        host: Grid,
    },
    /// Registry counters (cached plans, hits, misses).
    Stats,
}

impl Request {
    /// Parses a request line.
    ///
    /// # Errors
    ///
    /// [`EmbdError::Protocol`] naming the defect — unknown verb, wrong
    /// operand count, unparsable node index or graph spec. The message is
    /// what `ERR` responses carry back to the client.
    pub fn parse(line: &str) -> Result<Request> {
        let mut words = line.split(' ');
        let verb = words.next().unwrap_or("");
        let operands: Vec<&str> = words.collect();
        let grid = |spec: &str| -> Result<Grid> {
            parse_grid_spec(spec).map_err(|e| EmbdError::Protocol {
                message: format!("bad graph spec {spec:?}: {e}"),
            })
        };
        match verb {
            "MAP" => {
                let [v, guest, host] = operands.as_slice() else {
                    return Err(EmbdError::Protocol {
                        message: format!(
                            "MAP takes 3 operands (v, guest, host), got {}",
                            operands.len()
                        ),
                    });
                };
                let v = v.parse::<u64>().map_err(|_| EmbdError::Protocol {
                    message: format!("bad node index {v:?}"),
                })?;
                Ok(Request::Map {
                    v,
                    guest: grid(guest)?,
                    host: grid(host)?,
                })
            }
            "PLAN" => {
                let [guest, host] = operands.as_slice() else {
                    return Err(EmbdError::Protocol {
                        message: format!(
                            "PLAN takes 2 operands (guest, host), got {}",
                            operands.len()
                        ),
                    });
                };
                Ok(Request::Plan {
                    guest: grid(guest)?,
                    host: grid(host)?,
                })
            }
            "STATS" => {
                if operands.is_empty() {
                    Ok(Request::Stats)
                } else {
                    Err(EmbdError::Protocol {
                        message: format!("STATS takes no operands, got {}", operands.len()),
                    })
                }
            }
            other => Err(EmbdError::Protocol {
                message: format!("unknown verb {other:?}"),
            }),
        }
    }

    /// Serializes the request as a line — the inverse of [`Request::parse`].
    pub fn to_line(&self) -> String {
        match self {
            Request::Map { v, guest, host } => format!(
                "MAP {v} {} {}",
                format_grid_spec(guest),
                format_grid_spec(host)
            ),
            Request::Plan { guest, host } => format!(
                "PLAN {} {}",
                format_grid_spec(guest),
                format_grid_spec(host)
            ),
            Request::Stats => "STATS".into(),
        }
    }
}

/// Splits a response line into its payload, turning `ERR` into the typed
/// [`EmbdError::Remote`].
///
/// # Errors
///
/// [`EmbdError::Remote`] for `ERR` responses; [`EmbdError::Protocol`] when
/// the line is neither `OK …` nor `ERR …`.
pub fn parse_response(line: &str) -> Result<String> {
    if let Some(payload) = line.strip_prefix("OK ") {
        Ok(payload.to_string())
    } else if line == "OK" {
        Ok(String::new())
    } else if let Some(message) = line.strip_prefix("ERR ") {
        Err(EmbdError::Remote {
            message: message.to_string(),
        })
    } else {
        Err(EmbdError::Protocol {
            message: format!("malformed response {line:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "MAP 3 torus:4x2x3 mesh:4x6").unwrap();
        write_frame(&mut buffer, "").unwrap();
        let mut cursor = std::io::Cursor::new(buffer);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some("MAP 3 torus:4x2x3 mesh:4x6")
        );
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some(""));
        // Clean EOF at a frame boundary is a normal close.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        // A forged length prefix must be rejected before allocation.
        let mut forged = std::io::Cursor::new((u32::MAX).to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut forged),
            Err(EmbdError::Protocol { .. })
        ));
        // EOF mid-frame is an I/O error, not a clean close.
        let mut truncated = std::io::Cursor::new(vec![0, 0, 0, 9, b'h', b'i']);
        assert!(matches!(read_frame(&mut truncated), Err(EmbdError::Io(_))));
        // Invalid UTF-8 in the body is a protocol error.
        let mut invalid = std::io::Cursor::new(vec![0, 0, 0, 1, 0xFF]);
        assert!(matches!(
            read_frame(&mut invalid),
            Err(EmbdError::Protocol { .. })
        ));
    }

    #[test]
    fn requests_parse_and_round_trip() {
        for line in [
            "MAP 3 torus:4x2x3 mesh:4x6",
            "PLAN mesh:8x2 torus:4x4",
            "STATS",
        ] {
            let request = Request::parse(line).unwrap();
            assert_eq!(request.to_line(), line);
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "",
            "HELLO",
            "MAP",
            "MAP 3 torus:4x2x3",
            "MAP x torus:4x2x3 mesh:4x6",
            "MAP 3 cube:8 mesh:4x6",
            "MAP 3 torus:0x2 mesh:4x6",
            "PLAN mesh:4",
            "PLAN mesh:4 mesh:4 extra",
            "STATS now",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(EmbdError::Protocol { .. })),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn responses_split_into_payload_or_remote_error() {
        assert_eq!(parse_response("OK 17").unwrap(), "17");
        assert_eq!(parse_response("OK").unwrap(), "");
        assert!(matches!(
            parse_response("ERR unsupported embedding case: d=c"),
            Err(EmbdError::Remote { .. })
        ));
        assert!(matches!(
            parse_response("WHAT"),
            Err(EmbdError::Protocol { .. })
        ));
    }
}
