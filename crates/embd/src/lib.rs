//! The placement service: the paper's embeddings, served over the wire.
//!
//! Everything below `embd` computes placements in-process; this crate makes
//! them a network service, WIND-style — a registry, a server, a client
//! library, and a load generator, split so each piece stays testable alone:
//!
//! * [`registry`] — [`registry::PlanRegistry`], a concurrent cache of built
//!   placements keyed by `(guest, host)`: the [`embeddings::Plan`] value,
//!   the live [`embeddings::Embedding`] rebuilt from it, and the serialized
//!   plan text, built once per pair and shared. `refine` swaps in an
//!   annealing-refined table-backed plan.
//! * [`proto`] — the wire protocol: 4-byte big-endian length-prefixed UTF-8
//!   frames carrying `MAP v G H` / `PLAN G H` / `STATS` requests and
//!   `OK …` / `ERR …` responses. Frames are capped, operands validated,
//!   and every malformation is a typed error — a hostile or confused peer
//!   gets an `ERR`, never a panic.
//! * [`server`] — a thread-per-connection TCP server over a shared
//!   registry, with dial-to-wake shutdown.
//! * [`client`] — a blocking client: `map` for single placements, `plan` to
//!   fetch the whole plan and answer further queries locally.
//!
//! Two binaries drive it: `embd` (serve, or query a running server from the
//! command line) and `embd-bench` (a multi-client load generator reporting
//! p50/p99 latency and queries/s, with a differential `--check` mode that
//! compares every answer against a direct [`embeddings::auto::embed`]).
//!
//! The wire format is the [`embeddings::plan`] text format; see that
//! module for the grammar and round-trip guarantees.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod error;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::Client;
pub use error::{EmbdError, Result};
pub use registry::{PlanRegistry, RegistryStats};
pub use server::{spawn, ServerHandle};
