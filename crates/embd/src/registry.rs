//! The plan registry: a concurrent cache of built placements.
//!
//! Planning is cheap (the constructions are closed-form) but not free — the
//! planner walks its decision tree, validates shapes, and serializing the
//! plan allocates. A busy server answers thousands of queries per second for
//! a handful of distinct graph pairs, so the registry builds each pair once
//! and shares the result: an [`Entry`] bundling the [`Plan`], the live
//! [`Embedding`] rebuilt from it, and the pre-serialized plan text.
//!
//! Reads take a shared lock; a miss builds *outside* any lock (a slow or
//! failing build must not stall other pairs) and publishes under the write
//! lock, keeping whichever entry got there first so concurrent misses stay
//! consistent.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use embeddings::optim::{CongestionObjective, Optimizer, OptimizerConfig};
use embeddings::plan::{Plan, PlanError};
use embeddings::Embedding;
use topology::Grid;

/// A cached placement: the plan, the live embedding it rebuilds to, and the
/// serialized text served to `PLAN` queries.
pub struct Entry {
    /// The plan as a value.
    pub plan: Plan,
    /// The live embedding rebuilt from the plan.
    pub embedding: Embedding,
    /// `plan.to_text()`, serialized once.
    pub text: String,
}

/// Counters describing a registry's traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Number of cached plans.
    pub plans: u64,
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to build (or rebuild) a plan.
    pub misses: u64,
}

/// A concurrent cache of plans keyed by `(guest, host)`.
#[derive(Default)]
pub struct PlanRegistry {
    plans: RwLock<HashMap<(Grid, Grid), Arc<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached entry for `(guest, host)`, building the closed-form plan
    /// on first use.
    ///
    /// # Errors
    ///
    /// The planner's errors for pairs it cannot embed (different sizes,
    /// cases outside the paper's constructions), as [`PlanError`]. Failures
    /// are not cached: a pair can succeed later (it won't today — the
    /// planner is deterministic — but a negative cache would also pin
    /// transient build errors forever).
    pub fn get_or_build(&self, guest: &Grid, host: &Grid) -> Result<Arc<Entry>, PlanError> {
        let key = (guest.clone(), host.clone());
        if let Some(entry) = self.plans.read().expect("registry lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Plan::closed_form(guest, host)?;
        self.publish(key, plan)
    }

    /// Inserts (or replaces) the plan for its pair — the path by which a
    /// refined, table-backed plan supersedes the closed-form one.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the plan does not rebuild into a live embedding.
    pub fn insert(&self, plan: Plan) -> Result<Arc<Entry>, PlanError> {
        let key = (plan.guest().clone(), plan.host().clone());
        let entry = Self::build_entry(plan)?;
        self.plans
            .write()
            .expect("registry lock")
            .insert(key, entry.clone());
        Ok(entry)
    }

    /// Builds (or fetches) the pair's plan, refines its placement table by
    /// seeded annealing under the congestion objective, and caches the
    /// refined table-backed plan in place of the closed-form one.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when the pair cannot be embedded, the table cannot be
    /// materialized, or the optimizer rejects the configuration.
    pub fn refine(
        &self,
        guest: &Grid,
        host: &Grid,
        steps: u64,
        seed: u64,
    ) -> Result<Arc<Entry>, PlanError> {
        let base = self.get_or_build(guest, host)?;
        let mut objective = CongestionObjective::new(guest, host)?;
        let config = OptimizerConfig {
            seed,
            steps,
            ..OptimizerConfig::default()
        };
        let outcome = Optimizer::new(config).optimize(&base.embedding, &mut objective)?;
        let plan = Plan::with_table(
            guest.clone(),
            host.clone(),
            outcome.embedding.name(),
            outcome.embedding.dilation(),
            outcome.table,
        )?;
        self.insert(plan)
    }

    /// Traffic counters: cached plans, hits, misses.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            plans: self.plans.read().expect("registry lock").len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Rebuilds `plan` into an entry and publishes it, keeping an entry
    /// another thread may have published first.
    fn publish(&self, key: (Grid, Grid), plan: Plan) -> Result<Arc<Entry>, PlanError> {
        let entry = Self::build_entry(plan)?;
        let mut plans = self.plans.write().expect("registry lock");
        Ok(plans.entry(key).or_insert(entry).clone())
    }

    fn build_entry(plan: Plan) -> Result<Arc<Entry>, PlanError> {
        let embedding = plan.to_embedding()?;
        let text = plan.to_text();
        Ok(Arc::new(Entry {
            plan,
            embedding,
            text,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embeddings::auto::embed;
    use topology::Shape;

    fn shape(radices: &[u32]) -> Shape {
        Shape::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn caches_after_first_build() {
        let registry = PlanRegistry::new();
        let guest = Grid::torus(shape(&[4, 2, 3]));
        let host = Grid::mesh(shape(&[4, 6]));
        let first = registry.get_or_build(&guest, &host).unwrap();
        let second = registry.get_or_build(&guest, &host).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!(
            (stats.plans, stats.hits, stats.misses),
            (1, 1, 1),
            "{stats:?}"
        );
        // The cached embedding is the planner's, node for node.
        let direct = embed(&guest, &host).unwrap();
        for x in 0..guest.size() {
            assert_eq!(first.embedding.map_index(x), direct.map_index(x));
        }
        assert_eq!(first.text, first.plan.to_text());
    }

    #[test]
    fn distinct_pairs_get_distinct_entries() {
        let registry = PlanRegistry::new();
        let pairs = [
            (Grid::torus(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6]))),
            (Grid::mesh(shape(&[4, 6])), Grid::torus(shape(&[4, 2, 3]))),
            (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 6]))),
        ];
        for (guest, host) in &pairs {
            registry.get_or_build(guest, host).unwrap();
        }
        assert_eq!(registry.stats().plans, pairs.len() as u64);
    }

    #[test]
    fn failures_are_typed_and_uncached() {
        let registry = PlanRegistry::new();
        let guest = Grid::mesh(shape(&[2, 2]));
        let host = Grid::mesh(shape(&[5]));
        assert!(registry.get_or_build(&guest, &host).is_err());
        assert_eq!(registry.stats().plans, 0);
    }

    #[test]
    fn refine_supersedes_the_closed_form_plan() {
        let registry = PlanRegistry::new();
        let guest = Grid::torus(shape(&[4, 6]));
        let host = Grid::mesh(shape(&[4, 6]));
        let base = registry.get_or_build(&guest, &host).unwrap();
        assert!(base.plan.table().is_none());
        let refined = registry.refine(&guest, &host, 300, 11).unwrap();
        assert!(refined.plan.table().is_some());
        // The refined plan replaced the closed-form entry...
        let served = registry.get_or_build(&guest, &host).unwrap();
        assert!(Arc::ptr_eq(&refined, &served));
        assert_eq!(registry.stats().plans, 1);
        // ...and round-trips through its text like any other plan.
        let parsed = Plan::parse(&refined.text).unwrap();
        assert_eq!(parsed, refined.plan);
        for x in 0..guest.size() {
            assert_eq!(
                parsed.to_embedding().unwrap().map_index(x),
                refined.embedding.map_index(x)
            );
        }
    }

    #[test]
    fn concurrent_misses_converge_to_one_entry() {
        let registry = Arc::new(PlanRegistry::new());
        let guest = Grid::torus(shape(&[4, 4]));
        let host = Grid::mesh(shape(&[4, 4]));
        let entries: Vec<Arc<Entry>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let registry = registry.clone();
                    let (guest, host) = (guest.clone(), host.clone());
                    scope.spawn(move || registry.get_or_build(&guest, &host).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(entries.iter().all(|e| Arc::ptr_eq(e, &entries[0])));
        assert_eq!(registry.stats().plans, 1);
    }
}
