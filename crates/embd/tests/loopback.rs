//! End-to-end loopback tests: a real server on an ephemeral port, real
//! clients over TCP, answers compared against the library directly.

use std::sync::Arc;

use embd::{Client, EmbdError, PlanRegistry};
use embeddings::auto::embed;
use topology::{Grid, Shape};

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

fn spawn_server() -> embd::ServerHandle {
    embd::spawn("127.0.0.1:0", Arc::new(PlanRegistry::new())).expect("bind loopback")
}

#[test]
fn map_answers_match_direct_embed_on_every_node() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for (guest, host) in [
        (Grid::torus(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6]))),
        (Grid::mesh(shape(&[4, 6])), Grid::torus(shape(&[4, 2, 3]))),
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 6]))),
        (Grid::torus(shape(&[4, 4])), Grid::hypercube(4).unwrap()),
    ] {
        let direct = embed(&guest, &host).unwrap();
        for v in 0..guest.size() {
            assert_eq!(
                client.map(&guest, &host, v).unwrap(),
                direct.map_index(v),
                "MAP {v} {guest} {host}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn plan_fetch_rebuilds_the_whole_mapping_locally() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let guest = Grid::torus(shape(&[4, 2, 3]));
    let host = Grid::mesh(shape(&[4, 6]));
    let plan = client.plan(&guest, &host).unwrap();
    assert_eq!(plan.guest(), &guest);
    assert_eq!(plan.host(), &host);
    let rebuilt = plan.to_embedding().unwrap();
    let direct = embed(&guest, &host).unwrap();
    assert_eq!(rebuilt.name(), direct.name());
    for v in 0..guest.size() {
        assert_eq!(rebuilt.map_index(v), direct.map_index(v));
    }
    server.shutdown();
}

#[test]
fn bad_requests_answer_err_and_keep_the_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    // A parade of malformed and unserviceable requests...
    for bad in [
        "NOPE",
        "MAP",
        "MAP x torus:4x2x3 mesh:4x6",
        "MAP 3 torus:0x2 mesh:4x6",
        "MAP 99 torus:4x2x3 mesh:4x6", // node out of range
        "PLAN mesh:2x2 mesh:5",        // size mismatch
        "PLAN mesh:4x4",               // missing operand
        "STATS verbose",
    ] {
        let error = client.round_trip(bad).unwrap_err();
        assert!(
            matches!(error, EmbdError::Remote { .. }),
            "{bad:?} should be a server-side ERR, got {error}"
        );
    }
    // ...and the same connection still serves good queries.
    let guest = Grid::torus(shape(&[4, 2, 3]));
    let host = Grid::mesh(shape(&[4, 6]));
    let direct = embed(&guest, &host).unwrap();
    assert_eq!(client.map(&guest, &host, 7).unwrap(), direct.map_index(7));
    server.shutdown();
}

#[test]
fn concurrent_clients_share_one_cached_plan() {
    let server = spawn_server();
    let guest = Grid::torus(shape(&[8, 8]));
    let host = Grid::mesh(shape(&[8, 8]));
    let direct = embed(&guest, &host).unwrap();
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let (guest, host, direct, addr) = (&guest, &host, &direct, server.addr());
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..50 {
                    let v = (t * 17 + i * 13) % guest.size();
                    assert_eq!(client.map(guest, host, v).unwrap(), direct.map_index(v));
                }
            });
        }
    });
    // Eight clients, one pair: exactly one plan, built once.
    let stats = Client::connect(server.addr()).unwrap().stats().unwrap();
    assert_eq!(stats.plans, 1);
    assert_eq!(stats.hits + stats.misses, 400);
    assert!(stats.misses >= 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn stats_track_hits_and_misses() {
    let server = spawn_server();
    let mut client = Client::connect(server.addr()).unwrap();
    let guest = Grid::ring(12).unwrap();
    let host = Grid::mesh(shape(&[3, 4]));
    let empty = client.stats().unwrap();
    assert_eq!((empty.plans, empty.hits, empty.misses), (0, 0, 0));
    client.map(&guest, &host, 0).unwrap();
    client.map(&guest, &host, 1).unwrap();
    client.plan(&guest, &host).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!((stats.plans, stats.hits, stats.misses), (1, 2, 1));
    server.shutdown();
}

#[test]
fn refined_plans_are_served_over_the_wire() {
    // Refine a pair's placement in the registry; clients must receive the
    // table-backed plan and rebuild the exact refined mapping.
    let server = spawn_server();
    let guest = Grid::torus(shape(&[4, 6]));
    let host = Grid::mesh(shape(&[4, 6]));
    let refined = server.registry().refine(&guest, &host, 300, 11).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let plan = client.plan(&guest, &host).unwrap();
    assert_eq!(plan, refined.plan);
    assert!(plan.table().is_some());
    let rebuilt = plan.to_embedding().unwrap();
    for v in 0..guest.size() {
        assert_eq!(rebuilt.map_index(v), refined.embedding.map_index(v));
        assert_eq!(
            client.map(&guest, &host, v).unwrap(),
            refined.embedding.map_index(v)
        );
    }
    server.shutdown();
}
