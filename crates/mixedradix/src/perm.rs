//! Permutations of list positions.
//!
//! The paper (Section 2) applies a permutation `π : [k]⁺ → [k]⁺` to a list
//! `(i_1, …, i_k)` to obtain `(i_{π(1)}, …, i_{π(k)})`. Permutations are used
//! to reorder the dimensions of a torus or mesh — e.g. Theorem 24 embeds a
//! ring in an `L`-mesh by first embedding it in an `L*`-mesh whose first
//! dimension is even and then applying the permutation `π` with `π(L*) = L`.

use core::fmt;

use crate::digits::Digits;
use crate::error::{MixedRadixError, Result};

/// A permutation of `k` positions, stored 0-based.
///
/// Applying the permutation to a list produces a new list whose `j`-th entry
/// is the `π(j)`-th entry of the input: `apply(x)[j] = x[π(j)]`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    /// `map[j] = π(j)` (0-based).
    map: Vec<usize>,
}

impl Permutation {
    /// Creates a permutation from its 0-based position map.
    ///
    /// `map[j] = p` means the `j`-th output entry is taken from input
    /// position `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DigitOutOfRange`] if `map` is not a
    /// permutation of `0..map.len()`.
    pub fn new(map: Vec<usize>) -> Result<Self> {
        let k = map.len();
        let mut seen = vec![false; k];
        for (j, &p) in map.iter().enumerate() {
            if p >= k || seen[p] {
                return Err(MixedRadixError::DigitOutOfRange {
                    position: j,
                    digit: p as u64,
                    radix: k as u64,
                });
            }
            seen[p] = true;
        }
        Ok(Permutation { map })
    }

    /// The identity permutation on `k` positions.
    pub fn identity(k: usize) -> Self {
        Permutation {
            map: (0..k).collect(),
        }
    }

    /// The number of positions `k`.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the permutation acts on zero positions.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(j, &p)| j == p)
    }

    /// `π(j)` (0-based).
    pub fn image(&self, j: usize) -> usize {
        self.map[j]
    }

    /// The underlying 0-based map.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (j, &p) in self.map.iter().enumerate() {
            inv[p] = j;
        }
        Permutation { map: inv }
    }

    /// Composition `self ∘ other`: applying the result is the same as applying
    /// `other` first and then `self`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionMismatch`] if the two permutations
    /// act on different numbers of positions.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation> {
        if self.len() != other.len() {
            return Err(MixedRadixError::DimensionMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        // (self ∘ other).apply(x) = self.apply(other.apply(x))
        // self.apply(y)[j] = y[self.map[j]]; y = other.apply(x); y[p] = x[other.map[p]]
        // => result[j] = x[other.map[self.map[j]]]
        let map = self.map.iter().map(|&p| other.map[p]).collect();
        Ok(Permutation { map })
    }

    /// Applies the permutation to a generic slice, returning the reordered
    /// vector: `result[j] = x[π(j)]`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionMismatch`] if `x.len() != self.len()`.
    pub fn apply_slice<T: Clone>(&self, x: &[T]) -> Result<Vec<T>> {
        if x.len() != self.len() {
            return Err(MixedRadixError::DimensionMismatch {
                left: self.len(),
                right: x.len(),
            });
        }
        Ok(self.map.iter().map(|&p| x[p].clone()).collect())
    }

    /// Applies the permutation to a digit list: `result[j] = x[π(j)]`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionMismatch`] if the digit list has a
    /// different dimension.
    pub fn apply_digits(&self, x: &Digits) -> Result<Digits> {
        if x.dim() != self.len() {
            return Err(MixedRadixError::DimensionMismatch {
                left: self.len(),
                right: x.dim(),
            });
        }
        let mut out = Digits::zero(x.dim()).expect("dimension already validated");
        for j in 0..self.len() {
            out.set(j, x.get(self.map[j]));
        }
        Ok(out)
    }

    /// Finds a permutation `π` such that applying `π` to `from` yields `to`
    /// (i.e. `to[j] = from[π(j)]` for all `j`), if one exists.
    ///
    /// When several permutations work (repeated values), the lexicographically
    /// smallest position map is returned, which makes the result
    /// deterministic.
    pub fn mapping<T: Eq + Clone>(from: &[T], to: &[T]) -> Option<Permutation> {
        if from.len() != to.len() {
            return None;
        }
        let k = from.len();
        let mut used = vec![false; k];
        let mut map = Vec::with_capacity(k);
        for t in to {
            let mut found = None;
            for (p, f) in from.iter().enumerate() {
                if !used[p] && f == t {
                    found = Some(p);
                    break;
                }
            }
            match found {
                Some(p) => {
                    used[p] = true;
                    map.push(p);
                }
                None => return None,
            }
        }
        Some(Permutation { map })
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.map)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (j, &p) in self.map.iter().enumerate() {
            if j > 0 {
                write!(f, " ")?;
            }
            write!(f, "{j}->{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_acts_trivially() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(
            p.apply_slice(&[10, 20, 30, 40]).unwrap(),
            vec![10, 20, 30, 40]
        );
    }

    #[test]
    fn new_rejects_non_permutations() {
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3, 1]).is_err());
        assert!(Permutation::new(vec![]).is_ok());
    }

    #[test]
    fn apply_matches_paper_convention() {
        // π with map [2, 0, 1]: result[0] = x[2], result[1] = x[0], result[2] = x[1].
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        assert_eq!(
            p.apply_slice(&['a', 'b', 'c']).unwrap(),
            vec!['c', 'a', 'b']
        );
        let d = Digits::from_slice(&[5, 6, 7]).unwrap();
        assert_eq!(p.apply_digits(&d).unwrap().as_slice(), &[7, 5, 6]);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        let x = vec![1, 2, 3, 4];
        let y = p.apply_slice(&x).unwrap();
        assert_eq!(inv.apply_slice(&y).unwrap(), x);
        assert!(p.compose(&inv).is_ok());
    }

    #[test]
    fn compose_is_apply_other_then_self() {
        let p = Permutation::new(vec![1, 2, 0]).unwrap();
        let q = Permutation::new(vec![2, 1, 0]).unwrap();
        let pq = p.compose(&q).unwrap();
        let x = vec![10, 20, 30];
        assert_eq!(
            pq.apply_slice(&x).unwrap(),
            p.apply_slice(&q.apply_slice(&x).unwrap()).unwrap()
        );
    }

    #[test]
    fn compose_requires_equal_lengths() {
        let p = Permutation::identity(2);
        let q = Permutation::identity(3);
        assert!(p.compose(&q).is_err());
    }

    #[test]
    fn mapping_finds_a_reordering() {
        // L* = (2, 3, 5) must be mapped onto L = (3, 5, 2).
        let from = [2u64, 3, 5];
        let to = [3u64, 5, 2];
        let p = Permutation::mapping(&from, &to).unwrap();
        assert_eq!(p.apply_slice(&from).unwrap(), to.to_vec());
    }

    #[test]
    fn mapping_handles_repeats_deterministically() {
        let from = [2u64, 2, 4];
        let to = [4u64, 2, 2];
        let p = Permutation::mapping(&from, &to).unwrap();
        assert_eq!(p.apply_slice(&from).unwrap(), to.to_vec());
        assert_eq!(p.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn mapping_fails_when_multisets_differ() {
        assert!(Permutation::mapping(&[1, 2, 3], &[1, 2, 2]).is_none());
        assert!(Permutation::mapping(&[1, 2], &[1, 2, 3]).is_none());
    }

    #[test]
    fn apply_dimension_mismatch_is_an_error() {
        let p = Permutation::identity(3);
        assert!(p.apply_slice(&[1, 2]).is_err());
        let d = Digits::from_slice(&[1, 2]).unwrap();
        assert!(p.apply_digits(&d).is_err());
    }

    #[test]
    fn display_and_debug() {
        let p = Permutation::new(vec![1, 0]).unwrap();
        assert_eq!(format!("{p}"), "[0->1 1->0]");
        assert_eq!(format!("{p:?}"), "Permutation[1, 0]");
    }
}
