//! Enumeration of radix bases: every way to factor a size into radices.
//!
//! The experiment-sweep engine (`explab`) runs the paper's constructions over
//! *families* of shape pairs — "every torus→mesh pair with `n ≤ 2^k`" — so it
//! needs to list all shapes of a given size. A shape of size `n` is exactly an
//! ordered factorization of `n` into factors `≥ 2` (Definition 7 requires
//! every radix `l_j > 1`), which is what this module enumerates.

use crate::base::RadixBase;

/// All ordered factorizations of `n` into at most `max_dim` factors, each
/// `≥ 2`, in lexicographic order. `(2, 12)` and `(12, 2)` are distinct
/// entries: they denote different (if isomorphic) shapes.
///
/// Returns an empty list for `n < 2`, `max_dim == 0`, or prime `n` larger
/// than `u32::MAX` (no factor fits in a radix).
pub fn ordered_factorizations(n: u64, max_dim: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    if n < 2 || max_dim == 0 {
        return out;
    }
    let mut prefix = Vec::new();
    extend(n, max_dim, &mut prefix, &mut out);
    out
}

fn extend(rest: u64, slots: usize, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
    if rest == 1 {
        if !prefix.is_empty() {
            out.push(prefix.clone());
        }
        return;
    }
    if slots == 0 {
        return;
    }
    for factor in 2..=rest {
        if factor > u64::from(u32::MAX) {
            break;
        }
        if !rest.is_multiple_of(factor) {
            continue;
        }
        prefix.push(factor as u32);
        extend(rest / factor, slots - 1, prefix, out);
        prefix.pop();
    }
}

/// All *distinct* factorizations of `n` (one canonical representative per
/// multiset of factors, with factors non-increasing), at most `max_dim`
/// factors, each `≥ 2`. `(12, 2)` is listed; `(2, 12)` is not.
///
/// This is the deduplicated family used when isomorphic shapes should be
/// counted once.
pub fn distinct_factorizations(n: u64, max_dim: usize) -> Vec<Vec<u32>> {
    let mut out = ordered_factorizations(n, max_dim);
    for factors in &mut out {
        factors.sort_unstable_by(|a, b| b.cmp(a));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// All radix bases of size `n` with dimension at most `max_dim` — one
/// [`RadixBase`] per entry of [`ordered_factorizations`].
pub fn bases_of_size(n: u64, max_dim: usize) -> Vec<RadixBase> {
    ordered_factorizations(n, max_dim.min(crate::MAX_DIM))
        .into_iter()
        .map(|radices| RadixBase::new(radices).expect("factors >= 2 form a valid base"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_factorizations_of_12() {
        let f = ordered_factorizations(12, 3);
        // 12, 2·6, 6·2, 3·4, 4·3, 2·2·3, 2·3·2, 3·2·2.
        assert_eq!(f.len(), 8);
        assert!(f.contains(&vec![12]));
        assert!(f.contains(&vec![2, 6]));
        assert!(f.contains(&vec![6, 2]));
        assert!(f.contains(&vec![2, 2, 3]));
        for factors in &f {
            assert_eq!(factors.iter().map(|&x| u64::from(x)).product::<u64>(), 12);
            assert!(factors.iter().all(|&x| x >= 2));
        }
    }

    #[test]
    fn dimension_cap_limits_factor_count() {
        let f = ordered_factorizations(16, 2);
        assert!(f.iter().all(|factors| factors.len() <= 2));
        assert_eq!(f.len(), 4); // 16, 2·8, 8·2, 4·4.
    }

    #[test]
    fn distinct_factorizations_canonicalize() {
        let f = distinct_factorizations(12, 3);
        // {12}, {6,2}, {4,3}, {3,2,2}, sorted lexicographically.
        assert_eq!(f, vec![vec![3, 2, 2], vec![4, 3], vec![6, 2], vec![12]]);
    }

    #[test]
    fn primes_have_one_factorization() {
        assert_eq!(ordered_factorizations(13, 4), vec![vec![13]]);
        assert_eq!(distinct_factorizations(13, 4), vec![vec![13]]);
    }

    #[test]
    fn degenerate_inputs_are_empty() {
        assert!(ordered_factorizations(0, 3).is_empty());
        assert!(ordered_factorizations(1, 3).is_empty());
        assert!(ordered_factorizations(12, 0).is_empty());
    }

    #[test]
    fn bases_match_factorizations() {
        let bases = bases_of_size(24, 3);
        let factorizations = ordered_factorizations(24, 3);
        assert_eq!(bases.len(), factorizations.len());
        for (base, factors) in bases.iter().zip(&factorizations) {
            assert_eq!(base.radices(), factors.as_slice());
            assert_eq!(base.size(), 24);
        }
    }
}
