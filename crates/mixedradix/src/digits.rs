//! Fixed-capacity digit vectors.
//!
//! A [`Digits`] value is the radix-`L` representation of a number — the list
//! `(x_1, x_2, …, x_d)` of Definition 7 of the paper — or, equivalently, the
//! coordinate list of a node in an `(l_1, …, l_d)`-torus or mesh. It is stored
//! inline (no heap allocation) so that embedding functions can be evaluated in
//! hot loops without touching the allocator.

use core::fmt;

use crate::error::{MixedRadixError, Result};

/// Maximum number of dimensions (digits) supported by this crate.
///
/// A 32-dimensional graph in which every dimension has the minimum length 2
/// already has 2³² nodes, which is beyond anything this library enumerates, so
/// the cap is not a practical restriction.
pub const MAX_DIM: usize = 32;

/// An inline, fixed-capacity list of digits `(x_1, …, x_d)` with `d ≤ MAX_DIM`.
///
/// `Digits` is `Copy` and never allocates. Digits are stored in paper order:
/// index `0` holds `x_1` (the most significant digit of the mixed-radix
/// representation, i.e. the digit with the largest weight).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digits {
    len: u8,
    d: [u32; MAX_DIM],
}

impl Digits {
    /// Creates an empty digit list (dimension 0).
    ///
    /// Mostly useful as the starting point for [`Digits::push`] or
    /// [`Digits::concat`].
    #[inline]
    pub const fn empty() -> Self {
        Digits {
            len: 0,
            d: [0; MAX_DIM],
        }
    }

    /// Creates a digit list from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionTooLarge`] if the slice has more
    /// than [`MAX_DIM`] entries.
    pub fn from_slice(digits: &[u32]) -> Result<Self> {
        if digits.len() > MAX_DIM {
            return Err(MixedRadixError::DimensionTooLarge {
                requested: digits.len(),
                max: MAX_DIM,
            });
        }
        let mut d = [0u32; MAX_DIM];
        d[..digits.len()].copy_from_slice(digits);
        Ok(Digits {
            len: digits.len() as u8,
            d,
        })
    }

    /// Creates a digit list of dimension `dim` with every digit equal to
    /// `value`.
    pub fn repeat(value: u32, dim: usize) -> Result<Self> {
        if dim > MAX_DIM {
            return Err(MixedRadixError::DimensionTooLarge {
                requested: dim,
                max: MAX_DIM,
            });
        }
        let mut d = [0u32; MAX_DIM];
        d[..dim].fill(value);
        Ok(Digits { len: dim as u8, d })
    }

    /// Creates the all-zero digit list of dimension `dim` (the origin node).
    pub fn zero(dim: usize) -> Result<Self> {
        Self::repeat(0, dim)
    }

    /// The number of digits (the dimension `d`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.len as usize
    }

    /// Whether the list has no digits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The digits as a slice, most significant first.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.d[..self.len as usize]
    }

    /// Returns digit `i` (0-based; the paper's `x_{i+1}`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.dim(), "digit index {i} out of range");
        self.d[i]
    }

    /// Sets digit `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: u32) {
        assert!(i < self.dim(), "digit index {i} out of range");
        self.d[i] = value;
    }

    /// Appends a digit at the least-significant end.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionTooLarge`] if the list is already at
    /// capacity.
    pub fn push(&mut self, value: u32) -> Result<()> {
        if self.dim() == MAX_DIM {
            return Err(MixedRadixError::DimensionTooLarge {
                requested: MAX_DIM + 1,
                max: MAX_DIM,
            });
        }
        self.d[self.len as usize] = value;
        self.len += 1;
        Ok(())
    }

    /// List concatenation — the paper's `∘` operator on lists
    /// (Section 2): `(x_1,…,x_p) ∘ (y_1,…,y_q) = (x_1,…,x_p,y_1,…,y_q)`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionTooLarge`] if the result would have
    /// more than [`MAX_DIM`] digits.
    pub fn concat(&self, other: &Digits) -> Result<Digits> {
        let total = self.dim() + other.dim();
        if total > MAX_DIM {
            return Err(MixedRadixError::DimensionTooLarge {
                requested: total,
                max: MAX_DIM,
            });
        }
        let mut out = *self;
        out.d[self.dim()..total].copy_from_slice(other.as_slice());
        out.len = total as u8;
        Ok(out)
    }

    /// Returns the sub-list of digits in positions `range` (0-based,
    /// half-open), as its own `Digits` value.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Digits {
        assert!(start <= end && end <= self.dim(), "slice out of bounds");
        // Infallible: end - start <= self.dim() <= MAX_DIM.
        Digits::from_slice(&self.as_slice()[start..end]).expect("sub-slice fits")
    }

    /// An iterator over the digits, most significant first.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.as_slice().iter().copied()
    }
}

impl fmt::Debug for Digits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digits{self}")
    }
}

impl fmt::Display for Digits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, digit) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{digit}")?;
        }
        write!(f, ")")
    }
}

impl<'a> IntoIterator for &'a Digits {
    type Item = u32;
    type IntoIter = core::iter::Copied<core::slice::Iter<'a, u32>>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

impl TryFrom<&[u32]> for Digits {
    type Error = MixedRadixError;

    fn try_from(value: &[u32]) -> Result<Self> {
        Digits::from_slice(value)
    }
}

impl TryFrom<Vec<u32>> for Digits {
    type Error = MixedRadixError;

    fn try_from(value: Vec<u32>) -> Result<Self> {
        Digits::from_slice(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_round_trips() {
        let d = Digits::from_slice(&[3, 0, 2]).unwrap();
        assert_eq!(d.dim(), 3);
        assert_eq!(d.as_slice(), &[3, 0, 2]);
        assert_eq!(d.get(0), 3);
        assert_eq!(d.get(2), 2);
    }

    #[test]
    fn from_slice_rejects_too_many_digits() {
        let big = vec![0u32; MAX_DIM + 1];
        assert!(matches!(
            Digits::from_slice(&big),
            Err(MixedRadixError::DimensionTooLarge { .. })
        ));
    }

    #[test]
    fn empty_and_zero() {
        assert_eq!(Digits::empty().dim(), 0);
        assert!(Digits::empty().is_empty());
        let z = Digits::zero(4).unwrap();
        assert_eq!(z.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    fn repeat_fills_all_digits() {
        let d = Digits::repeat(7, 5).unwrap();
        assert_eq!(d.as_slice(), &[7, 7, 7, 7, 7]);
        assert!(Digits::repeat(1, MAX_DIM + 1).is_err());
    }

    #[test]
    fn push_appends_at_least_significant_end() {
        let mut d = Digits::empty();
        d.push(1).unwrap();
        d.push(2).unwrap();
        d.push(3).unwrap();
        assert_eq!(d.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn push_fails_at_capacity() {
        let mut d = Digits::repeat(0, MAX_DIM).unwrap();
        assert!(d.push(0).is_err());
    }

    #[test]
    fn concat_matches_paper_operator() {
        let a = Digits::from_slice(&[1, 2]).unwrap();
        let b = Digits::from_slice(&[3, 4, 5]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.as_slice(), &[1, 2, 3, 4, 5]);
        // Concatenating with the empty list is the identity.
        assert_eq!(a.concat(&Digits::empty()).unwrap(), a);
        assert_eq!(Digits::empty().concat(&a).unwrap(), a);
    }

    #[test]
    fn concat_overflow_is_an_error() {
        let a = Digits::repeat(0, 20).unwrap();
        let b = Digits::repeat(0, 20).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn slice_extracts_sub_lists() {
        let d = Digits::from_slice(&[9, 8, 7, 6]).unwrap();
        assert_eq!(d.slice(1, 3).as_slice(), &[8, 7]);
        assert_eq!(d.slice(0, 0).dim(), 0);
        assert_eq!(d.slice(0, 4), d);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let d = Digits::from_slice(&[1, 2]).unwrap();
        let _ = d.slice(1, 3);
    }

    #[test]
    fn set_and_get() {
        let mut d = Digits::zero(3).unwrap();
        d.set(1, 42);
        assert_eq!(d.as_slice(), &[0, 42, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let d = Digits::zero(2).unwrap();
        let _ = d.get(2);
    }

    #[test]
    fn display_is_paper_style_tuple() {
        let d = Digits::from_slice(&[0, 0, 1]).unwrap();
        assert_eq!(d.to_string(), "(0, 0, 1)");
        assert_eq!(Digits::empty().to_string(), "()");
        assert_eq!(format!("{d:?}"), "Digits(0, 0, 1)");
    }

    #[test]
    fn equality_ignores_unused_capacity() {
        let mut a = Digits::from_slice(&[1, 2, 3]).unwrap();
        let b = Digits::from_slice(&[1, 2]).unwrap();
        assert_ne!(a, b);
        a = a.slice(0, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn iterator_yields_digits_in_order() {
        let d = Digits::from_slice(&[5, 6, 7]).unwrap();
        let collected: Vec<u32> = d.iter().collect();
        assert_eq!(collected, vec![5, 6, 7]);
        let collected2: Vec<u32> = (&d).into_iter().collect();
        assert_eq!(collected2, vec![5, 6, 7]);
    }

    #[test]
    fn try_from_conversions() {
        let d: Digits = vec![1u32, 2, 3].try_into().unwrap();
        assert_eq!(d.as_slice(), &[1, 2, 3]);
        let d2: Digits = (&[4u32, 5][..]).try_into().unwrap();
        assert_eq!(d2.as_slice(), &[4, 5]);
    }
}
