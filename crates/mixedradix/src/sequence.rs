//! Sequences of radix-`L` numbers and their spreads (Definition 8).
//!
//! A bijection `f : [n] → Ω_L` can be read as an *acyclic sequence*
//! `f(0), f(1), …, f(n−1)` or as a *cyclic sequence* in which `f(n−1)` and
//! `f(0)` are also successive. The **δ_m-spread** (resp. **δ_t-spread**) of the
//! sequence is the maximum δ_m-distance (resp. δ_t-distance) between
//! successive elements.
//!
//! The paper's central observation is that an embedding of a line (ring) in a
//! mesh or torus *is* such a sequence, and its dilation cost *is* the
//! corresponding spread.

use crate::base::RadixBase;
use crate::digits::Digits;
use crate::distance::{delta_m_unchecked, delta_t_unchecked};
use crate::error::{MixedRadixError, Result};

/// A sequence of radix-`L` numbers — a function `[len] → Ω_L`.
///
/// Implementors provide random access via [`RadixSequence::at`]; the provided
/// methods compute spreads, check bijectivity, and materialize the sequence.
pub trait RadixSequence {
    /// The radix base `L` whose numbers the sequence ranges over.
    fn base(&self) -> &RadixBase;

    /// The length of the sequence (usually `n = |Ω_L|`).
    fn len(&self) -> u64;

    /// The `i`-th element of the sequence.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i >= self.len()`.
    fn at(&self, i: u64) -> Digits;

    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The δ_m-distances between successive elements of the acyclic sequence
    /// (length `len − 1`).
    fn successive_mesh_distances(&self) -> Vec<u64> {
        (1..self.len())
            .map(|i| delta_m_unchecked(&self.at(i - 1), &self.at(i)))
            .collect()
    }

    /// The δ_t-distances between successive elements of the acyclic sequence.
    fn successive_torus_distances(&self) -> Vec<u64> {
        (1..self.len())
            .map(|i| delta_t_unchecked(self.base(), &self.at(i - 1), &self.at(i)))
            .collect()
    }

    /// δ_m-spread of the acyclic sequence.
    fn acyclic_spread_mesh(&self) -> u64 {
        (1..self.len())
            .map(|i| delta_m_unchecked(&self.at(i - 1), &self.at(i)))
            .max()
            .unwrap_or(0)
    }

    /// δ_t-spread of the acyclic sequence.
    fn acyclic_spread_torus(&self) -> u64 {
        (1..self.len())
            .map(|i| delta_t_unchecked(self.base(), &self.at(i - 1), &self.at(i)))
            .max()
            .unwrap_or(0)
    }

    /// δ_m-spread of the cyclic sequence (the acyclic spread together with the
    /// wrap-around pair `f(n−1), f(0)`).
    fn cyclic_spread_mesh(&self) -> u64 {
        if self.len() < 2 {
            return 0;
        }
        let wrap = delta_m_unchecked(&self.at(self.len() - 1), &self.at(0));
        self.acyclic_spread_mesh().max(wrap)
    }

    /// δ_t-spread of the cyclic sequence.
    fn cyclic_spread_torus(&self) -> u64 {
        if self.len() < 2 {
            return 0;
        }
        let wrap = delta_t_unchecked(self.base(), &self.at(self.len() - 1), &self.at(0));
        self.acyclic_spread_torus().max(wrap)
    }

    /// Whether the sequence is a bijection onto `Ω_L` — every radix-`L` number
    /// appears exactly once and every element is a valid radix-`L` number.
    fn is_bijection(&self) -> bool {
        let base = self.base();
        if self.len() != base.size() {
            return false;
        }
        let n = base.size() as usize;
        let mut seen = vec![false; n];
        for i in 0..self.len() {
            let digits = self.at(i);
            if !base.contains(&digits) {
                return false;
            }
            let idx = base
                .to_index(&digits)
                .expect("digits validated by contains") as usize;
            if seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
        true
    }

    /// Materializes the sequence into an [`ExplicitSequence`].
    fn materialize(&self) -> ExplicitSequence {
        let elements = (0..self.len()).map(|i| self.at(i)).collect();
        ExplicitSequence {
            base: self.base().clone(),
            elements,
        }
    }
}

/// A sequence stored as an explicit vector of digit lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplicitSequence {
    base: RadixBase,
    elements: Vec<Digits>,
}

impl ExplicitSequence {
    /// Creates an explicit sequence after validating every element against the
    /// base.
    ///
    /// # Errors
    ///
    /// Returns an error if any element is not a valid radix-`L` number.
    pub fn new(base: RadixBase, elements: Vec<Digits>) -> Result<Self> {
        for digits in &elements {
            if digits.dim() != base.dim() {
                return Err(MixedRadixError::DimensionMismatch {
                    left: base.dim(),
                    right: digits.dim(),
                });
            }
            if !base.contains(digits) {
                // Locate the offending digit for a precise error.
                for j in 0..base.dim() {
                    if digits.get(j) >= base.radix(j) {
                        return Err(MixedRadixError::DigitOutOfRange {
                            position: j,
                            digit: digits.get(j) as u64,
                            radix: base.radix(j) as u64,
                        });
                    }
                }
            }
        }
        Ok(ExplicitSequence { base, elements })
    }

    /// The elements as a slice.
    pub fn elements(&self) -> &[Digits] {
        &self.elements
    }
}

impl RadixSequence for ExplicitSequence {
    fn base(&self) -> &RadixBase {
        &self.base
    }

    fn len(&self) -> u64 {
        self.elements.len() as u64
    }

    fn at(&self, i: u64) -> Digits {
        self.elements[i as usize]
    }
}

/// The natural-order sequence `P` — the numbers `0, 1, …, n−1` in their
/// radix-`L` representations (Section 3.1).
///
/// For every `d > 1` its δ_m-spread is at least 2 (shown in the paper as
/// motivation for constructing the reflected sequence `P′ = f_L`).
#[derive(Clone, Debug)]
pub struct NaturalSequence {
    base: RadixBase,
}

impl NaturalSequence {
    /// Creates the natural-order sequence over `base`.
    pub fn new(base: RadixBase) -> Self {
        NaturalSequence { base }
    }
}

impl RadixSequence for NaturalSequence {
    fn base(&self) -> &RadixBase {
        &self.base
    }

    fn len(&self) -> u64 {
        self.base.size()
    }

    fn at(&self, i: u64) -> Digits {
        self.base.to_digits(i).expect("index in range")
    }
}

/// A sequence defined by an arbitrary function `[n] → Ω_L`.
pub struct FnSequence<F>
where
    F: Fn(u64) -> Digits,
{
    base: RadixBase,
    len: u64,
    f: F,
}

impl<F> FnSequence<F>
where
    F: Fn(u64) -> Digits,
{
    /// Wraps a closure as a sequence of `len` elements over `base`.
    pub fn new(base: RadixBase, len: u64, f: F) -> Self {
        FnSequence { base, len, f }
    }
}

impl<F> RadixSequence for FnSequence<F>
where
    F: Fn(u64) -> Digits,
{
    fn base(&self) -> &RadixBase {
        &self.base
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn at(&self, i: u64) -> Digits {
        (self.f)(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(slice: &[u32]) -> Digits {
        Digits::from_slice(slice).unwrap()
    }

    /// The example of Figure 3: a function f : [9] → Ω_(3,3).
    ///
    /// Viewed as an acyclic sequence its δ_m-spread is 2 and its δ_t-spread is
    /// 1; viewed as a cyclic sequence its δ_m-spread is 3 and its δ_t-spread
    /// is 2.
    fn figure3_sequence() -> ExplicitSequence {
        let base = RadixBase::new(vec![3, 3]).unwrap();
        // The scanned figure does not reproduce the exact table, but the text
        // quotes its spreads: acyclic δ_m = 2, δ_t = 1; cyclic δ_m = 3,
        // δ_t = 2. This sequence has exactly those spreads.
        let elements = vec![
            d(&[0, 0]),
            d(&[0, 1]),
            d(&[0, 2]),
            d(&[2, 2]),
            d(&[2, 1]),
            d(&[2, 0]),
            d(&[1, 0]),
            d(&[1, 1]),
            d(&[1, 2]),
        ];
        ExplicitSequence::new(base, elements).unwrap()
    }

    #[test]
    fn figure3_spreads() {
        let seq = figure3_sequence();
        assert!(seq.is_bijection());
        assert_eq!(seq.acyclic_spread_mesh(), 2);
        assert_eq!(seq.acyclic_spread_torus(), 1);
        assert_eq!(seq.cyclic_spread_mesh(), 3); // wrap (1,2) -> (0,0)
        assert_eq!(seq.cyclic_spread_torus(), 2);
    }

    #[test]
    fn natural_sequence_spread_exceeds_one_for_higher_dims() {
        // "The sequence P has thus a δ_m-spread greater than 1 for all d > 1."
        for radices in [vec![4u32, 2, 3], vec![2, 2], vec![3, 3, 3], vec![5, 4]] {
            let base = RadixBase::new(radices).unwrap();
            let p = NaturalSequence::new(base);
            assert!(p.is_bijection());
            assert!(p.acyclic_spread_mesh() > 1);
        }
    }

    #[test]
    fn natural_sequence_of_dimension_one_has_unit_spread() {
        let base = RadixBase::new(vec![7]).unwrap();
        let p = NaturalSequence::new(base);
        assert_eq!(p.acyclic_spread_mesh(), 1);
        assert_eq!(p.acyclic_spread_torus(), 1);
        // Cyclic: the wrap-around pair 6 -> 0 has mesh distance 6, torus 1.
        assert_eq!(p.cyclic_spread_mesh(), 6);
        assert_eq!(p.cyclic_spread_torus(), 1);
    }

    #[test]
    fn natural_sequence_423_spread_matches_figure_4() {
        // Figure 4: the sequence P for L = (4, 2, 3) has δ_m-spread > 1; the
        // largest jump is l_3 - 1 = 2 within a digit, combined across digits.
        let base = RadixBase::new(vec![4, 2, 3]).unwrap();
        let p = NaturalSequence::new(base);
        // Successive elements of P differ by: within segment 1, at boundaries
        // a drop of (l_i - 1) in lower digits plus 1 in the carry digit.
        assert_eq!(p.acyclic_spread_mesh(), 4); // e.g. (0,1,2) -> (1,0,0)
    }

    #[test]
    fn explicit_sequence_validates_elements() {
        let base = RadixBase::new(vec![2, 2]).unwrap();
        assert!(ExplicitSequence::new(base.clone(), vec![d(&[0, 0]), d(&[2, 0])]).is_err());
        assert!(ExplicitSequence::new(base.clone(), vec![d(&[0, 0, 0])]).is_err());
        assert!(ExplicitSequence::new(base, vec![d(&[0, 0]), d(&[1, 1])]).is_ok());
    }

    #[test]
    fn bijection_detects_duplicates_and_short_sequences() {
        let base = RadixBase::new(vec![2, 2]).unwrap();
        let dup = ExplicitSequence::new(
            base.clone(),
            vec![d(&[0, 0]), d(&[0, 1]), d(&[0, 0]), d(&[1, 1])],
        )
        .unwrap();
        assert!(!dup.is_bijection());
        let short = ExplicitSequence::new(base.clone(), vec![d(&[0, 0]), d(&[0, 1])]).unwrap();
        assert!(!short.is_bijection());
    }

    #[test]
    fn fn_sequence_wraps_closures() {
        let base = RadixBase::new(vec![3, 3]).unwrap();
        let inner = base.clone();
        let seq = FnSequence::new(base.clone(), 9, move |i| inner.to_digits(i).unwrap());
        assert!(seq.is_bijection());
        // Natural order wraps (0,2) -> (1,0), a torus distance of 2.
        assert_eq!(seq.acyclic_spread_torus(), 2);
        let mat = seq.materialize();
        assert_eq!(mat.len(), 9);
        assert_eq!(mat.at(4), base.to_digits(4).unwrap());
    }

    #[test]
    fn empty_and_singleton_spreads_are_zero() {
        let base = RadixBase::new(vec![2]).unwrap();
        let empty = ExplicitSequence::new(base.clone(), vec![]).unwrap();
        assert_eq!(empty.acyclic_spread_mesh(), 0);
        assert_eq!(empty.cyclic_spread_mesh(), 0);
        assert!(empty.is_empty());
        let single = ExplicitSequence::new(base, vec![d(&[1])]).unwrap();
        assert_eq!(single.acyclic_spread_torus(), 0);
        assert_eq!(single.cyclic_spread_torus(), 0);
    }

    #[test]
    fn successive_distance_vectors() {
        let seq = figure3_sequence();
        let mesh = seq.successive_mesh_distances();
        let torus = seq.successive_torus_distances();
        assert_eq!(mesh.len(), 8);
        assert_eq!(torus.len(), 8);
        assert_eq!(*mesh.iter().max().unwrap(), 2);
        assert_eq!(*torus.iter().max().unwrap(), 1);
    }
}
