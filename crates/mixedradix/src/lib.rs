//! Mixed-radix numbering systems and generalized Gray-code machinery.
//!
//! This crate implements the numbering-system substrate of
//! *Ma & Tao, "Embeddings Among Toruses and Meshes"* (ICPP 1987):
//!
//! * [`RadixBase`] — a radix base `L = (l_1, …, l_d)` with its weights
//!   (Definition 7), doubling as the *shape* of a torus or mesh;
//! * [`Digits`] — radix-`L` representations / node coordinates, stored inline;
//! * [`planes`] — the structure-of-arrays digit-plane batch codec and the
//!   multiply–shift reciprocal constants shared with the scalar decode;
//! * [`distance`] — the δ_m (mesh) and δ_t (torus) distance measures of
//!   Lemmas 5 and 6;
//! * [`sequence`] — acyclic and cyclic sequences of radix-`L` numbers and
//!   their spreads (Definition 8), the quantity that becomes *dilation cost*
//!   once a sequence is read as an embedding;
//! * [`gray`] — the classic binary reflected Gray code, the radix-2 special
//!   case that the paper generalizes;
//! * [`Permutation`] — dimension permutations used to reorder shapes;
//! * [`enumerate`] — every radix base of a given size (ordered and distinct
//!   factorizations), the generator behind `explab`'s shape families.
//!
//! The actual embedding functions (`f_L`, `g_L`, `h_L`, …) live in the
//! `embeddings` crate; this crate provides the arithmetic they are built from.
//!
//! # Example
//!
//! ```
//! use mixedradix::{RadixBase, distance};
//!
//! // The paper's running example: L = (4, 2, 3), n = 24.
//! let base = RadixBase::new(vec![4, 2, 3]).unwrap();
//! assert_eq!(base.size(), 24);
//!
//! // Node (0,0,1) and node (3,0,0) are at torus distance 2 but mesh distance 4.
//! let a = base.to_digits(1).unwrap();
//! let b = base.to_digits(18).unwrap();
//! assert_eq!(a.as_slice(), &[0, 0, 1]);
//! assert_eq!(b.as_slice(), &[3, 0, 0]);
//! assert_eq!(distance::delta_t(&base, &a, &b).unwrap(), 2);
//! assert_eq!(distance::delta_m(&base, &a, &b).unwrap(), 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod base;
pub mod digits;
pub mod distance;
pub mod enumerate;
pub mod error;
pub mod gray;
pub mod iter;
pub mod perm;
pub mod planes;
pub mod sequence;

pub use base::RadixBase;
pub use digits::{Digits, MAX_DIM};
pub use error::{MixedRadixError, Result};
pub use perm::Permutation;
pub use planes::{DigitPlanes, MagicDivisor, LANES};
pub use sequence::{ExplicitSequence, FnSequence, NaturalSequence, RadixSequence};

/// Commonly used items.
pub mod prelude {
    pub use crate::base::RadixBase;
    pub use crate::digits::{Digits, MAX_DIM};
    pub use crate::distance::{delta_m, delta_m_index, delta_t, delta_t_index};
    pub use crate::error::MixedRadixError;
    pub use crate::gray::{binary_gray, binary_gray_inverse, BinaryGraySequence};
    pub use crate::perm::Permutation;
    pub use crate::planes::{DigitPlanes, MagicDivisor, LANES};
    pub use crate::sequence::{ExplicitSequence, FnSequence, NaturalSequence, RadixSequence};
}
