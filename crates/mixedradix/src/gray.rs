//! The binary reflected Gray code — the radix-2 special case.
//!
//! Section 2 of the paper notes that for `n = 2^d` and `L = (2, 2, …, 2)`, a
//! function `f : [n] → Ω_L` with unit δ_t-spread (equal to the δ_m-spread in
//! this case) is a *Gray code*. The embeddings of meshes in hypercubes in
//! \[CS86\] are built from binary reflected Gray codes; the paper's `f_L` is the
//! mixed-radix generalization. This module provides the classic binary code
//! both as bit arithmetic and as a [`RadixSequence`], so that tests and
//! benchmarks can check that `f_L` specializes to it.

use crate::base::RadixBase;
use crate::digits::Digits;
use crate::error::{MixedRadixError, Result};
use crate::sequence::RadixSequence;

/// The `i`-th codeword of the binary reflected Gray code: `i ⊕ (i >> 1)`.
#[inline]
pub fn binary_gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// The inverse of [`binary_gray`]: recovers `i` from its codeword.
#[inline]
pub fn binary_gray_inverse(code: u64) -> u64 {
    let mut value = code;
    let mut shift = 1u32;
    while shift < u64::BITS {
        value ^= value >> shift;
        shift <<= 1;
    }
    value
}

/// The binary reflected Gray code on `d` bits as a radix-`(2,…,2)` sequence.
#[derive(Clone, Debug)]
pub struct BinaryGraySequence {
    base: RadixBase,
    bits: usize,
}

impl BinaryGraySequence {
    /// Creates the Gray-code sequence on `bits` bits (`2^bits` codewords).
    ///
    /// # Errors
    ///
    /// Returns an error if `bits` is zero or exceeds [`crate::MAX_DIM`].
    pub fn new(bits: usize) -> Result<Self> {
        if bits == 0 {
            return Err(MixedRadixError::EmptyBase);
        }
        let base = RadixBase::binary(bits)?;
        Ok(BinaryGraySequence { base, bits })
    }

    /// The number of bits `d`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The `i`-th codeword as raw bits.
    pub fn codeword(&self, i: u64) -> u64 {
        binary_gray(i)
    }
}

impl RadixSequence for BinaryGraySequence {
    fn base(&self) -> &RadixBase {
        &self.base
    }

    fn len(&self) -> u64 {
        self.base.size()
    }

    fn at(&self, i: u64) -> Digits {
        let code = binary_gray(i);
        let mut digits = Digits::zero(self.bits).expect("bits within MAX_DIM");
        for b in 0..self.bits {
            // Most significant bit first, to match the natural-order digit
            // convention of `RadixBase::to_digits`.
            let bit = (code >> (self.bits - 1 - b)) & 1;
            digits.set(b, bit as u32);
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_changes_one_bit_at_a_time() {
        for i in 0..1023u64 {
            let a = binary_gray(i);
            let b = binary_gray(i + 1);
            assert_eq!(
                (a ^ b).count_ones(),
                1,
                "codewords {i} and {} differ",
                i + 1
            );
        }
    }

    #[test]
    fn gray_code_is_cyclic_on_powers_of_two() {
        for bits in 1..=10u32 {
            let n = 1u64 << bits;
            let first = binary_gray(0);
            let last = binary_gray(n - 1);
            assert_eq!((first ^ last).count_ones(), 1);
        }
    }

    #[test]
    fn inverse_round_trips() {
        for i in 0..4096u64 {
            assert_eq!(binary_gray_inverse(binary_gray(i)), i);
        }
        assert_eq!(binary_gray_inverse(binary_gray(u64::MAX)), u64::MAX);
    }

    #[test]
    fn gray_code_is_a_permutation_of_each_prefix_range() {
        let n = 1u64 << 8;
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let c = binary_gray(i);
            assert!(c < n);
            assert!(!seen[c as usize]);
            seen[c as usize] = true;
        }
    }

    #[test]
    fn sequence_has_unit_spreads() {
        for bits in 1..=8usize {
            let seq = BinaryGraySequence::new(bits).unwrap();
            assert!(seq.is_bijection());
            assert_eq!(seq.acyclic_spread_mesh(), 1);
            assert_eq!(seq.acyclic_spread_torus(), 1);
            // The binary reflected Gray code is cyclic.
            assert_eq!(seq.cyclic_spread_mesh(), 1);
            assert_eq!(seq.cyclic_spread_torus(), 1);
        }
    }

    #[test]
    fn first_codewords_match_the_classic_table() {
        let seq = BinaryGraySequence::new(3).unwrap();
        let codes: Vec<u64> = (0..8).map(|i| seq.codeword(i)).collect();
        assert_eq!(
            codes,
            vec![0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        );
        assert_eq!(seq.at(3).as_slice(), &[0, 1, 0]);
        assert_eq!(seq.at(4).as_slice(), &[1, 1, 0]);
        assert_eq!(seq.bits(), 3);
    }

    #[test]
    fn zero_bits_is_rejected() {
        assert!(BinaryGraySequence::new(0).is_err());
    }
}
