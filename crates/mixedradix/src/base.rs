//! Radix bases and radix-`L` representations (Definition 7 of the paper).

use core::fmt;

use crate::digits::{Digits, MAX_DIM};
use crate::error::{MixedRadixError, Result};
use crate::perm::Permutation;
use crate::planes::MagicDivisor;

/// A radix base `L = (l_1, l_2, …, l_d)` with every `l_j > 1`.
///
/// The base defines the mixed-radix numbering system `Ω_L` of Definition 7:
/// every integer `x ∈ [n]`, `n = Π l_j`, has a unique radix-`L` representation
/// `(x̂_1, …, x̂_d)` with `x̂_j = ⌊x / w_j⌋ mod l_j`, where the *weights* are
/// `w_j = Π_{i>j} l_i` (so `w_d = 1` and `w_0 = n`).
///
/// A radix base doubles as the *shape* of an `(l_1, …, l_d)`-torus or mesh;
/// the `topology` crate builds its graphs on top of this type.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RadixBase {
    radices: Vec<u32>,
    /// `weights[j] = Π_{i > j} radices[i]` for `j` in `0..=d`, so
    /// `weights[d] = 1` and `weights[0] = n`.
    weights: Vec<u64>,
    size: u64,
    /// Per-radix multiply–shift reciprocals for the least-significant-first
    /// decode peel: `dividers[j]` divides by `radices[j]`, proven exact for
    /// numerators up to `Π_{i ≤ j} radices[i] − 1` (the largest value the
    /// peel can hand it). `None` on the rare shapes whose numerator range
    /// admits no 64-bit magic; those dimensions fall back to hardware
    /// division. Derived deterministically from `radices`, so the derived
    /// `PartialEq`/`Hash` stay consistent.
    dividers: Vec<Option<MagicDivisor>>,
}

impl RadixBase {
    /// Creates a radix base from the list of radices `(l_1, …, l_d)`.
    ///
    /// # Errors
    ///
    /// * [`MixedRadixError::EmptyBase`] if `radices` is empty.
    /// * [`MixedRadixError::RadixTooSmall`] if any component is `< 2`
    ///   (Definition 7 requires every `l_j > 1`).
    /// * [`MixedRadixError::DimensionTooLarge`] if there are more than
    ///   [`MAX_DIM`] components.
    /// * [`MixedRadixError::SizeOverflow`] if `Π l_j` does not fit in a `u64`.
    pub fn new(radices: Vec<u32>) -> Result<Self> {
        if radices.is_empty() {
            return Err(MixedRadixError::EmptyBase);
        }
        if radices.len() > MAX_DIM {
            return Err(MixedRadixError::DimensionTooLarge {
                requested: radices.len(),
                max: MAX_DIM,
            });
        }
        for (i, &l) in radices.iter().enumerate() {
            if l < 2 {
                return Err(MixedRadixError::RadixTooSmall {
                    position: i,
                    value: l as u64,
                });
            }
        }
        let d = radices.len();
        let mut weights = vec![1u64; d + 1];
        for j in (0..d).rev() {
            weights[j] = weights[j + 1]
                .checked_mul(radices[j] as u64)
                .ok_or(MixedRadixError::SizeOverflow)?;
        }
        let size = weights[0];
        // The decode peels digits least-significant-first; before peeling
        // dimension j the running numerator is < Π_{i ≤ j} l_i.
        let mut dividers = Vec::with_capacity(d);
        let mut prefix = 1u64;
        for &l in &radices {
            prefix *= l as u64;
            dividers.push(MagicDivisor::new(l as u64, prefix - 1));
        }
        Ok(RadixBase {
            radices,
            weights,
            size,
            dividers,
        })
    }

    /// Creates the square base `(l, l, …, l)` of dimension `d`.
    pub fn square(l: u32, d: usize) -> Result<Self> {
        Self::new(vec![l; d])
    }

    /// Creates the binary base `(2, 2, …, 2)` of dimension `d` — the shape of
    /// a hypercube of size `2^d` (Definition 4).
    pub fn binary(d: usize) -> Result<Self> {
        Self::square(2, d)
    }

    /// The dimension `d` (number of radices).
    #[inline]
    pub fn dim(&self) -> usize {
        self.radices.len()
    }

    /// The size `n = Π l_j` of the numbering system (equivalently, the number
    /// of nodes in the torus/mesh of this shape).
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The radix `l_{i+1}` at 0-based position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn radix(&self, i: usize) -> u32 {
        self.radices[i]
    }

    /// All radices `(l_1, …, l_d)` as a slice.
    #[inline]
    pub fn radices(&self) -> &[u32] {
        &self.radices
    }

    /// The weight `w_i` for `i ∈ [d+1]` (0-based: `weight(0) = n`,
    /// `weight(d) = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `i > self.dim()`.
    #[inline]
    pub fn weight(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// All weights `w_0, …, w_d`.
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The precomputed multiply–shift reciprocal for dimension `j`'s radix,
    /// shared between the scalar decode and the [`crate::planes`] batch
    /// codec. `None` when the dimension's numerator range admits no exact
    /// 64-bit magic (callers use hardware division there).
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    #[inline]
    pub fn divider(&self, j: usize) -> Option<MagicDivisor> {
        self.dividers[j]
    }

    /// Whether all radices are equal (`l_1 = l_2 = … = l_d`) — the paper's
    /// *square* condition.
    pub fn is_square(&self) -> bool {
        self.radices.windows(2).all(|w| w[0] == w[1])
    }

    /// Whether every radix equals 2, i.e. the base is the shape of a
    /// hypercube (Definition 4).
    pub fn is_binary(&self) -> bool {
        self.radices.iter().all(|&l| l == 2)
    }

    /// Whether the size `n` is even.
    pub fn has_even_size(&self) -> bool {
        self.size.is_multiple_of(2)
    }

    /// Whether at least one radix is even (equivalent to
    /// [`RadixBase::has_even_size`], but stated on the components).
    pub fn has_even_component(&self) -> bool {
        self.radices.iter().any(|&l| l % 2 == 0)
    }

    /// The position of the first even radix, if any.
    pub fn first_even_component(&self) -> Option<usize> {
        self.radices.iter().position(|&l| l % 2 == 0)
    }

    /// The smallest radix — the paper's `p`, the length of the shortest
    /// dimension, used in the Theorem 47 lower bound.
    pub fn min_radix(&self) -> u32 {
        *self.radices.iter().min().expect("base is non-empty")
    }

    /// The largest radix.
    pub fn max_radix(&self) -> u32 {
        *self.radices.iter().max().expect("base is non-empty")
    }

    /// The radix-`L` representation of `x` (the paper's `u_L`).
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::IndexOutOfRange`] if `x >= n`.
    pub fn to_digits(&self, x: u64) -> Result<Digits> {
        let mut out = Digits::empty();
        self.to_digits_into(x, &mut out)?;
        Ok(out)
    }

    /// Writes the radix-`L` representation of `x` into an existing digit
    /// list, resizing it to this base's dimension.
    ///
    /// This is the scratch-buffer twin of [`RadixBase::to_digits`], intended
    /// for hot loops that decode millions of indices: the caller keeps one
    /// `Digits` value alive and overwrites it per index instead of
    /// constructing a fresh value per call.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::IndexOutOfRange`] if `x >= n`; `out` is left
    /// untouched in that case.
    #[inline]
    pub fn to_digits_into(&self, x: u64, out: &mut Digits) -> Result<()> {
        if x >= self.size {
            return Err(MixedRadixError::IndexOutOfRange {
                index: x,
                size: self.size,
            });
        }
        *out = Digits::zero(self.dim()).expect("dim <= MAX_DIM");
        // Peel least-significant-first: x̂_j = rem mod l_j, rem /= l_j —
        // equivalent to the weight-based ⌊x / w_j⌋ mod l_j of the paper, but
        // each division is by a u32 radix with a precomputed multiply–shift
        // reciprocal instead of a 64-bit hardware div per digit.
        let mut rem = x;
        for j in (0..self.dim()).rev() {
            let (q, r) = match self.dividers[j] {
                Some(m) => m.div_rem(rem),
                None => {
                    let l = self.radices[j] as u64;
                    (rem / l, rem % l)
                }
            };
            out.set(j, r as u32);
            rem = q;
        }
        Ok(())
    }

    /// The integer represented by a digit list (the paper's `u_L⁻¹`):
    /// `Σ_k x̂_k · w_k`.
    ///
    /// # Errors
    ///
    /// * [`MixedRadixError::DimensionMismatch`] if the digit list has the
    ///   wrong number of digits.
    /// * [`MixedRadixError::DigitOutOfRange`] if any digit exceeds its radix.
    pub fn to_index(&self, digits: &Digits) -> Result<u64> {
        if digits.dim() != self.dim() {
            return Err(MixedRadixError::DimensionMismatch {
                left: self.dim(),
                right: digits.dim(),
            });
        }
        let mut x = 0u64;
        for j in 0..self.dim() {
            let digit = digits.get(j) as u64;
            if digit >= self.radices[j] as u64 {
                return Err(MixedRadixError::DigitOutOfRange {
                    position: j,
                    digit,
                    radix: self.radices[j] as u64,
                });
            }
            x += digit * self.weights[j + 1];
        }
        Ok(x)
    }

    /// Whether a digit list is a valid radix-`L` number (correct dimension and
    /// every digit within its radix).
    pub fn contains(&self, digits: &Digits) -> bool {
        digits.dim() == self.dim() && (0..self.dim()).all(|j| digits.get(j) < self.radices[j])
    }

    /// Concatenation of two bases — the `∘` operator applied to shape lists.
    ///
    /// # Errors
    ///
    /// Propagates size/dimension overflow errors.
    pub fn concat(&self, other: &RadixBase) -> Result<RadixBase> {
        let mut radices = self.radices.clone();
        radices.extend_from_slice(&other.radices);
        RadixBase::new(radices)
    }

    /// Applies a permutation to the base: `result[j] = self[π(j)]`.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DimensionMismatch`] if the permutation acts
    /// on a different number of positions.
    pub fn permute(&self, perm: &Permutation) -> Result<RadixBase> {
        let radices = perm.apply_slice(&self.radices)?;
        RadixBase::new(radices)
    }

    /// An iterator over all radix-`L` numbers in natural (numeric) order.
    pub fn iter(&self) -> crate::iter::DigitsIter<'_> {
        crate::iter::DigitsIter::new(self)
    }
}

impl fmt::Debug for RadixBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RadixBase{self}")
    }
}

impl fmt::Display for RadixBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.radices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

impl TryFrom<Vec<u32>> for RadixBase {
    type Error = MixedRadixError;

    fn try_from(value: Vec<u32>) -> Result<Self> {
        RadixBase::new(value)
    }
}

impl TryFrom<&[u32]> for RadixBase {
    type Error = MixedRadixError;

    fn try_from(value: &[u32]) -> Result<Self> {
        RadixBase::new(value.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper: L = (4, 2, 3), n = 24,
    /// w_1 = 6, w_2 = 3, w_3 = 1 (page 7).
    fn paper_base() -> RadixBase {
        RadixBase::new(vec![4, 2, 3]).unwrap()
    }

    #[test]
    fn weights_match_paper_example() {
        let base = paper_base();
        assert_eq!(base.size(), 24);
        assert_eq!(base.weight(0), 24);
        assert_eq!(base.weight(1), 6);
        assert_eq!(base.weight(2), 3);
        assert_eq!(base.weight(3), 1);
    }

    #[test]
    fn construction_validates_components() {
        assert!(matches!(
            RadixBase::new(vec![]),
            Err(MixedRadixError::EmptyBase)
        ));
        assert!(matches!(
            RadixBase::new(vec![4, 1, 3]),
            Err(MixedRadixError::RadixTooSmall { position: 1, .. })
        ));
        assert!(matches!(
            RadixBase::new(vec![3, 0]),
            Err(MixedRadixError::RadixTooSmall { position: 1, .. })
        ));
        assert!(RadixBase::new(vec![2; MAX_DIM]).is_ok());
        assert!(matches!(
            RadixBase::new(vec![2; MAX_DIM + 1]),
            Err(MixedRadixError::DimensionTooLarge { .. })
        ));
    }

    #[test]
    fn overflow_is_detected() {
        // 2^32 components of value 2^32 would overflow; use a few huge radices.
        assert!(matches!(
            RadixBase::new(vec![u32::MAX, u32::MAX, u32::MAX]),
            Err(MixedRadixError::SizeOverflow)
        ));
    }

    #[test]
    fn digit_round_trip_is_identity() {
        let base = paper_base();
        for x in 0..base.size() {
            let digits = base.to_digits(x).unwrap();
            assert!(base.contains(&digits));
            assert_eq!(base.to_index(&digits).unwrap(), x);
        }
    }

    #[test]
    fn radix_423_representation_examples() {
        let base = paper_base();
        // x = 0 -> (0,0,0); x = 1 -> (0,0,1); x = 3 -> (0,1,0); x = 6 -> (1,0,0).
        assert_eq!(base.to_digits(0).unwrap().as_slice(), &[0, 0, 0]);
        assert_eq!(base.to_digits(1).unwrap().as_slice(), &[0, 0, 1]);
        assert_eq!(base.to_digits(3).unwrap().as_slice(), &[0, 1, 0]);
        assert_eq!(base.to_digits(6).unwrap().as_slice(), &[1, 0, 0]);
        assert_eq!(base.to_digits(23).unwrap().as_slice(), &[3, 1, 2]);
    }

    #[test]
    fn to_digits_into_reuses_the_scratch_buffer() {
        let base = paper_base();
        let mut scratch = Digits::from_slice(&[9, 9, 9, 9, 9]).unwrap();
        for x in 0..base.size() {
            base.to_digits_into(x, &mut scratch).unwrap();
            assert_eq!(scratch, base.to_digits(x).unwrap());
            assert_eq!(base.to_index(&scratch).unwrap(), x);
        }
        // Out-of-range indices leave the scratch untouched.
        let before = scratch;
        assert!(base.to_digits_into(base.size(), &mut scratch).is_err());
        assert_eq!(scratch, before);
    }

    #[test]
    fn to_digits_rejects_out_of_range() {
        let base = paper_base();
        assert!(matches!(
            base.to_digits(24),
            Err(MixedRadixError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn to_index_validates_digits() {
        let base = paper_base();
        let wrong_dim = Digits::from_slice(&[0, 0]).unwrap();
        assert!(matches!(
            base.to_index(&wrong_dim),
            Err(MixedRadixError::DimensionMismatch { .. })
        ));
        let bad_digit = Digits::from_slice(&[0, 2, 0]).unwrap();
        assert!(matches!(
            base.to_index(&bad_digit),
            Err(MixedRadixError::DigitOutOfRange { .. })
        ));
        assert!(!base.contains(&bad_digit));
    }

    #[test]
    fn square_and_binary_constructors() {
        let sq = RadixBase::square(5, 3).unwrap();
        assert!(sq.is_square());
        assert!(!sq.is_binary());
        assert_eq!(sq.size(), 125);

        let hc = RadixBase::binary(10).unwrap();
        assert!(hc.is_binary());
        assert!(hc.is_square());
        assert_eq!(hc.size(), 1024);

        let rect = paper_base();
        assert!(!rect.is_square());
    }

    #[test]
    fn parity_helpers() {
        let base = paper_base();
        assert!(base.has_even_size());
        assert!(base.has_even_component());
        assert_eq!(base.first_even_component(), Some(0));

        let odd = RadixBase::new(vec![3, 5, 7]).unwrap();
        assert!(!odd.has_even_size());
        assert!(!odd.has_even_component());
        assert_eq!(odd.first_even_component(), None);
    }

    #[test]
    fn min_max_radix() {
        let base = paper_base();
        assert_eq!(base.min_radix(), 2);
        assert_eq!(base.max_radix(), 4);
    }

    #[test]
    fn concat_and_permute() {
        let a = RadixBase::new(vec![4, 2]).unwrap();
        let b = RadixBase::new(vec![3]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.radices(), &[4, 2, 3]);

        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let permuted = c.permute(&p).unwrap();
        assert_eq!(permuted.radices(), &[3, 4, 2]);
        assert_eq!(permuted.size(), c.size());
    }

    #[test]
    fn display_is_paper_style() {
        assert_eq!(paper_base().to_string(), "(4, 2, 3)");
        assert_eq!(format!("{:?}", paper_base()), "RadixBase(4, 2, 3)");
    }

    #[test]
    fn try_from_conversions() {
        let base: RadixBase = vec![2u32, 3].try_into().unwrap();
        assert_eq!(base.size(), 6);
        let base2: RadixBase = (&[2u32, 2][..]).try_into().unwrap();
        assert_eq!(base2.size(), 4);
    }

    #[test]
    fn single_dimension_base_is_a_ring_or_line_shape() {
        let base = RadixBase::new(vec![7]).unwrap();
        assert_eq!(base.dim(), 1);
        assert_eq!(base.size(), 7);
        assert_eq!(base.to_digits(5).unwrap().as_slice(), &[5]);
    }
}
