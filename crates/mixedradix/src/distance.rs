//! The two distance measures on radix-`L` numbers (Lemmas 5 and 6).
//!
//! Viewing the numbers in `Ω_L` as the nodes of an `(l_1, …, l_d)`-torus or an
//! `(l_1, …, l_d)`-mesh gives two distances between any pair of numbers:
//!
//! * the **torus distance** `δ_t(A, B) = Σ_k min{|i_k − i'_k|, l_k − |i_k − i'_k|}`
//!   (Lemma 5), and
//! * the **mesh distance** `δ_m(A, B) = Σ_k |i_k − i'_k|` (Lemma 6).
//!
//! The mesh distance is never smaller than the torus distance.

use crate::base::RadixBase;
use crate::digits::Digits;
use crate::error::{MixedRadixError, Result};

/// Per-dimension mesh distance `|a − b|`.
#[inline]
pub fn digit_distance_mesh(a: u32, b: u32) -> u64 {
    (a as i64 - b as i64).unsigned_abs()
}

/// Per-dimension torus (cyclic) distance `min{|a − b|, l − |a − b|}`.
#[inline]
pub fn digit_distance_torus(a: u32, b: u32, l: u32) -> u64 {
    let diff = digit_distance_mesh(a, b);
    diff.min(l as u64 - diff)
}

fn check_pair(base: &RadixBase, a: &Digits, b: &Digits) -> Result<()> {
    for (name, digits) in [("left", a), ("right", b)] {
        if digits.dim() != base.dim() {
            return Err(MixedRadixError::DimensionMismatch {
                left: base.dim(),
                right: digits.dim(),
            });
        }
        for j in 0..base.dim() {
            if digits.get(j) >= base.radix(j) {
                let _ = name;
                return Err(MixedRadixError::DigitOutOfRange {
                    position: j,
                    digit: digits.get(j) as u64,
                    radix: base.radix(j) as u64,
                });
            }
        }
    }
    Ok(())
}

/// The mesh distance `δ_m(a, b)` of Lemma 6.
///
/// # Errors
///
/// Returns an error if either operand is not a valid radix-`L` number.
pub fn delta_m(base: &RadixBase, a: &Digits, b: &Digits) -> Result<u64> {
    check_pair(base, a, b)?;
    Ok(delta_m_unchecked(a, b))
}

/// The torus distance `δ_t(a, b)` of Lemma 5.
///
/// # Errors
///
/// Returns an error if either operand is not a valid radix-`L` number.
pub fn delta_t(base: &RadixBase, a: &Digits, b: &Digits) -> Result<u64> {
    check_pair(base, a, b)?;
    Ok(delta_t_unchecked(base, a, b))
}

/// The mesh distance without validating the operands.
///
/// # Panics
///
/// Panics if the operands have different dimensions.
#[inline]
pub fn delta_m_unchecked(a: &Digits, b: &Digits) -> u64 {
    assert_eq!(a.dim(), b.dim(), "operands must have equal dimension");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| digit_distance_mesh(x, y))
        .sum()
}

/// The torus distance without validating that digits are within their radix.
///
/// # Panics
///
/// Panics if the operands' dimensions differ from the base's.
#[inline]
pub fn delta_t_unchecked(base: &RadixBase, a: &Digits, b: &Digits) -> u64 {
    assert_eq!(a.dim(), base.dim(), "left operand dimension mismatch");
    assert_eq!(b.dim(), base.dim(), "right operand dimension mismatch");
    (0..base.dim())
        .map(|j| digit_distance_torus(a.get(j), b.get(j), base.radix(j)))
        .sum()
}

/// Mesh distance between two numbers given by their integer values.
///
/// # Errors
///
/// Returns an error if either index is out of range.
pub fn delta_m_index(base: &RadixBase, x: u64, y: u64) -> Result<u64> {
    let a = base.to_digits(x)?;
    let b = base.to_digits(y)?;
    Ok(delta_m_unchecked(&a, &b))
}

/// Torus distance between two numbers given by their integer values.
///
/// # Errors
///
/// Returns an error if either index is out of range.
pub fn delta_t_index(base: &RadixBase, x: u64, y: u64) -> Result<u64> {
    let a = base.to_digits(x)?;
    let b = base.to_digits(y)?;
    Ok(delta_t_unchecked(base, &a, &b))
}

/// The largest possible mesh distance in `Ω_L` — the diameter of the
/// `L`-mesh, `Σ_j (l_j − 1)`.
pub fn mesh_diameter(base: &RadixBase) -> u64 {
    base.radices().iter().map(|&l| (l - 1) as u64).sum()
}

/// The largest possible torus distance in `Ω_L` — the diameter of the
/// `L`-torus, `Σ_j ⌊l_j / 2⌋`.
pub fn torus_diameter(base: &RadixBase) -> u64 {
    base.radices().iter().map(|&l| (l / 2) as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base423() -> RadixBase {
        RadixBase::new(vec![4, 2, 3]).unwrap()
    }

    fn d(slice: &[u32]) -> Digits {
        Digits::from_slice(slice).unwrap()
    }

    #[test]
    fn paper_page_7_example() {
        // "In the torus given in Figure 1, the distance between the nodes
        // (0,0,1) and (3,0,0) is 2, and in the mesh given in Figure 2, the
        // distance between the nodes (0,0,1) and (3,0,0) is 4."
        let base = base423();
        let a = d(&[0, 0, 1]);
        let b = d(&[3, 0, 0]);
        assert_eq!(delta_t(&base, &a, &b).unwrap(), 2);
        assert_eq!(delta_m(&base, &a, &b).unwrap(), 4);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let base = base423();
        for x in 0..base.size() {
            assert_eq!(delta_m_index(&base, x, x).unwrap(), 0);
            assert_eq!(delta_t_index(&base, x, x).unwrap(), 0);
        }
    }

    #[test]
    fn distances_are_symmetric() {
        let base = base423();
        for x in 0..base.size() {
            for y in 0..base.size() {
                assert_eq!(
                    delta_m_index(&base, x, y).unwrap(),
                    delta_m_index(&base, y, x).unwrap()
                );
                assert_eq!(
                    delta_t_index(&base, x, y).unwrap(),
                    delta_t_index(&base, y, x).unwrap()
                );
            }
        }
    }

    #[test]
    fn mesh_distance_dominates_torus_distance() {
        // "the δ_m-distance between any two numbers in R_L is always greater
        // than or equal to their δ_t-distance."
        let base = base423();
        for x in 0..base.size() {
            for y in 0..base.size() {
                assert!(delta_m_index(&base, x, y).unwrap() >= delta_t_index(&base, x, y).unwrap());
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_on_small_base() {
        let base = RadixBase::new(vec![3, 4]).unwrap();
        let n = base.size();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let dm = |a, b| delta_m_index(&base, a, b).unwrap();
                    let dt = |a, b| delta_t_index(&base, a, b).unwrap();
                    assert!(dm(x, z) <= dm(x, y) + dm(y, z));
                    assert!(dt(x, z) <= dt(x, y) + dt(y, z));
                }
            }
        }
    }

    #[test]
    fn digit_distances() {
        assert_eq!(digit_distance_mesh(5, 2), 3);
        assert_eq!(digit_distance_mesh(2, 5), 3);
        assert_eq!(digit_distance_torus(0, 3, 4), 1);
        assert_eq!(digit_distance_torus(0, 2, 4), 2);
        assert_eq!(digit_distance_torus(1, 1, 4), 0);
    }

    #[test]
    fn torus_distance_wraps_around() {
        let base = RadixBase::new(vec![10]).unwrap();
        let a = d(&[0]);
        let b = d(&[9]);
        assert_eq!(delta_t(&base, &a, &b).unwrap(), 1);
        assert_eq!(delta_m(&base, &a, &b).unwrap(), 9);
    }

    #[test]
    fn validation_errors() {
        let base = base423();
        let wrong_dim = d(&[0, 0]);
        let ok = d(&[0, 0, 0]);
        assert!(delta_m(&base, &wrong_dim, &ok).is_err());
        assert!(delta_t(&base, &ok, &wrong_dim).is_err());
        let bad_digit = d(&[0, 5, 0]);
        assert!(delta_m(&base, &ok, &bad_digit).is_err());
        assert!(delta_t_index(&base, 0, 24).is_err());
        assert!(delta_m_index(&base, 24, 0).is_err());
    }

    #[test]
    fn diameters() {
        let base = base423();
        assert_eq!(mesh_diameter(&base), 3 + 1 + 2);
        assert_eq!(torus_diameter(&base), 2 + 1 + 1);
        // Diameters are attained.
        let mut max_m = 0;
        let mut max_t = 0;
        for x in 0..base.size() {
            for y in 0..base.size() {
                max_m = max_m.max(delta_m_index(&base, x, y).unwrap());
                max_t = max_t.max(delta_t_index(&base, x, y).unwrap());
            }
        }
        assert_eq!(max_m, mesh_diameter(&base));
        assert_eq!(max_t, torus_diameter(&base));
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn unchecked_mesh_distance_panics_on_dim_mismatch() {
        let _ = delta_m_unchecked(&d(&[1, 2]), &d(&[1, 2, 3]));
    }
}
