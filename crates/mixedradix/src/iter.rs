//! Iterators over mixed-radix numbering systems.

use crate::base::RadixBase;
use crate::digits::Digits;

/// Iterates over all radix-`L` numbers in natural (numeric) order, yielding
/// [`Digits`] values — the sequence the paper calls `P` (Section 3.1).
///
/// The iterator increments digits in place (odometer style) rather than
/// dividing on every step, so iterating over all `n` numbers costs `O(n)`
/// amortized digit operations.
pub struct DigitsIter<'a> {
    base: &'a RadixBase,
    next: Option<Digits>,
    remaining: u64,
}

impl<'a> DigitsIter<'a> {
    /// Creates an iterator over all numbers of `base` in natural order.
    pub fn new(base: &'a RadixBase) -> Self {
        DigitsIter {
            base,
            next: Some(Digits::zero(base.dim()).expect("base dim within bounds")),
            remaining: base.size(),
        }
    }

    fn advance(&mut self, mut current: Digits) -> Option<Digits> {
        // Odometer increment from the least-significant digit.
        for j in (0..self.base.dim()).rev() {
            let digit = current.get(j) + 1;
            if digit < self.base.radix(j) {
                current.set(j, digit);
                return Some(current);
            }
            current.set(j, 0);
        }
        None
    }
}

impl<'a> Iterator for DigitsIter<'a> {
    type Item = Digits;

    fn next(&mut self) -> Option<Digits> {
        let current = self.next?;
        self.remaining -= 1;
        self.next = self.advance(current);
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (r, Some(r))
    }
}

impl<'a> ExactSizeIterator for DigitsIter<'a> {}

/// Iterates over the index/digits pairs `(x, u_L(x))` in natural order.
pub struct EnumeratedDigitsIter<'a> {
    inner: DigitsIter<'a>,
    index: u64,
}

impl<'a> EnumeratedDigitsIter<'a> {
    /// Creates an iterator over `(x, u_L(x))` for all `x ∈ [n]`.
    pub fn new(base: &'a RadixBase) -> Self {
        EnumeratedDigitsIter {
            inner: DigitsIter::new(base),
            index: 0,
        }
    }
}

impl<'a> Iterator for EnumeratedDigitsIter<'a> {
    type Item = (u64, Digits);

    fn next(&mut self) -> Option<(u64, Digits)> {
        let digits = self.inner.next()?;
        let idx = self.index;
        self.index += 1;
        Some((idx, digits))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<'a> ExactSizeIterator for EnumeratedDigitsIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_order_matches_to_digits() {
        let base = RadixBase::new(vec![4, 2, 3]).unwrap();
        let all: Vec<Digits> = base.iter().collect();
        assert_eq!(all.len(), 24);
        for (x, digits) in all.iter().enumerate() {
            assert_eq!(*digits, base.to_digits(x as u64).unwrap());
        }
    }

    #[test]
    fn enumerated_iterator_pairs_indices() {
        let base = RadixBase::new(vec![3, 3]).unwrap();
        for (x, digits) in EnumeratedDigitsIter::new(&base) {
            assert_eq!(base.to_index(&digits).unwrap(), x);
        }
        assert_eq!(EnumeratedDigitsIter::new(&base).count(), 9);
    }

    #[test]
    fn size_hint_is_exact() {
        let base = RadixBase::new(vec![2, 5]).unwrap();
        let mut iter = base.iter();
        assert_eq!(iter.len(), 10);
        iter.next();
        iter.next();
        assert_eq!(iter.len(), 8);
    }

    #[test]
    fn single_dimension_iteration() {
        let base = RadixBase::new(vec![5]).unwrap();
        let all: Vec<u32> = base.iter().map(|d| d.get(0)).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn iteration_is_exhaustive_and_distinct() {
        let base = RadixBase::new(vec![2, 3, 2]).unwrap();
        let all: Vec<Digits> = base.iter().collect();
        assert_eq!(all.len(), 12);
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }
}
