//! Error types for the `mixedradix` crate.

use core::fmt;

/// Errors produced when constructing or manipulating mixed-radix numbering
/// systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedRadixError {
    /// A radix base must have at least one component.
    EmptyBase,
    /// Every component of a radix base must be an integer greater than 1
    /// (Definition 7 of the paper requires `l_j > 1`).
    RadixTooSmall {
        /// Zero-based position of the offending component.
        position: usize,
        /// The offending value.
        value: u64,
    },
    /// The base has more components than this implementation supports
    /// (see [`crate::MAX_DIM`]).
    DimensionTooLarge {
        /// Requested dimension.
        requested: usize,
        /// Maximum supported dimension.
        max: usize,
    },
    /// The product of the radices does not fit in a `u64`.
    SizeOverflow,
    /// An integer was outside the range `[0, n)` of the numbering system.
    IndexOutOfRange {
        /// The offending index.
        index: u64,
        /// The size `n` of the numbering system.
        size: u64,
    },
    /// A digit exceeded its radix.
    DigitOutOfRange {
        /// Zero-based position of the offending digit.
        position: usize,
        /// The offending digit.
        digit: u64,
        /// The radix at that position.
        radix: u64,
    },
    /// Two objects that must share a radix base (or at least a dimension) did
    /// not.
    DimensionMismatch {
        /// Dimension of the left-hand operand.
        left: usize,
        /// Dimension of the right-hand operand.
        right: usize,
    },
}

impl fmt::Display for MixedRadixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixedRadixError::EmptyBase => {
                write!(f, "a radix base must have at least one component")
            }
            MixedRadixError::RadixTooSmall { position, value } => write!(
                f,
                "radix component at position {position} is {value}, but every component must be > 1"
            ),
            MixedRadixError::DimensionTooLarge { requested, max } => write!(
                f,
                "radix base has {requested} components, but at most {max} are supported"
            ),
            MixedRadixError::SizeOverflow => {
                write!(f, "the product of the radices does not fit in a u64")
            }
            MixedRadixError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} is outside the range [0, {size})")
            }
            MixedRadixError::DigitOutOfRange {
                position,
                digit,
                radix,
            } => write!(
                f,
                "digit {digit} at position {position} exceeds its radix {radix}"
            ),
            MixedRadixError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: left operand has {left} components, right has {right}"
            ),
        }
    }
}

impl std::error::Error for MixedRadixError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MixedRadixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(MixedRadixError, &str)> = vec![
            (MixedRadixError::EmptyBase, "at least one component"),
            (
                MixedRadixError::RadixTooSmall {
                    position: 2,
                    value: 1,
                },
                "position 2",
            ),
            (
                MixedRadixError::DimensionTooLarge {
                    requested: 64,
                    max: 32,
                },
                "64 components",
            ),
            (MixedRadixError::SizeOverflow, "does not fit"),
            (
                MixedRadixError::IndexOutOfRange { index: 7, size: 6 },
                "index 7",
            ),
            (
                MixedRadixError::DigitOutOfRange {
                    position: 0,
                    digit: 9,
                    radix: 3,
                },
                "digit 9",
            ),
            (
                MixedRadixError::DimensionMismatch { left: 2, right: 3 },
                "dimension mismatch",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = MixedRadixError::SizeOverflow;
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, MixedRadixError::EmptyBase);
    }
}
