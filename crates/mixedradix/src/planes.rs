//! Structure-of-arrays **digit planes**: the batch form of the radix-`L`
//! codec, plus the multiply–shift reciprocal constants that strength-reduce
//! its divisions.
//!
//! The scalar codec ([`RadixBase::to_digits_into`]) turns one index into one
//! digit list with a `div`/`mod` per dimension. Every hot sweep in the
//! workspace — embedding verification, congestion routing, netsim route
//! expansion — decodes millions of *consecutive* indices, so this module
//! restructures the work two ways:
//!
//! * **Reciprocal constants** ([`MagicDivisor`]): for a fixed divisor `d`,
//!   `x / d` is computed as `(x · m) >> p` with precomputed `(m, p)`
//!   (Granlund–Montgomery multiply–shift division). The checked constructor
//!   proves exactness for the whole numerator range up front, so the hot
//!   path carries no correction step.
//! * **Digit planes** ([`DigitPlanes`]): a batch of up to [`LANES`] indices
//!   stored *plane-major* — one flat `u32` buffer per dimension, digit of
//!   lane `i` at offset `i` — so decoding runs as straight-line
//!   per-dimension sweeps the autovectorizer can chew on, and consumers read
//!   whole planes instead of gathering digits node by node.
//!
//! For consecutive index ranges ([`DigitPlanes::decode_range`]) the planes
//! are filled without any per-lane division at all: digit `j` of index `x`
//! changes only at multiples of the weight `w_{j+1}`, so each plane is a
//! run-length fill (an odometer sweep) costing `O(LANES / w)` writes beyond
//! the first.
//!
//! The layout, one cache line per plane:
//!
//! ```text
//! lane:        0    1    2    …   63
//! plane 0   [ x̂₁ of every lane            ]   ← planes[0 · LANES ..]
//! plane 1   [ x̂₂ of every lane            ]   ← planes[1 · LANES ..]
//!   ⋮
//! plane d−1 [ x̂_d of every lane           ]   ← planes[(d−1) · LANES ..]
//! ```

use crate::base::RadixBase;
use crate::digits::Digits;
use crate::error::{MixedRadixError, Result};

/// The batch width of a [`DigitPlanes`] buffer: 64 lanes, i.e. one 256-byte
/// plane per dimension — small enough that a full 32-dimension batch stays
/// in L1, wide enough for the autovectorizer to fill vector registers.
pub const LANES: usize = 64;

/// A precomputed multiply–shift reciprocal: `x / divisor` as
/// `(x · magic) >> shift`, exact for every `x ≤ max_numerator`.
///
/// The constructor is *checked*: it searches for a `(magic, shift)` pair and
/// admits it only after proving the Granlund–Montgomery exactness condition
/// `f · max_numerator < 2^shift` (with `f = magic · divisor − 2^shift`), so
/// [`MagicDivisor::divide`] needs no correction step. Powers of two take
/// `magic = 1` with `shift = log2(divisor)` — the same branch-free
/// mul-and-shift path, with zero error for *all* numerators.
///
/// For a handful of extreme (divisor, range) pairs no exact pair exists
/// within a 64-bit magic; the constructor returns `None` and callers fall
/// back to hardware division for that dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MagicDivisor {
    magic: u64,
    shift: u32,
    divisor: u64,
    max_numerator: u64,
}

impl MagicDivisor {
    /// Finds a reciprocal for `divisor`, exact for every numerator in
    /// `0..=max_numerator`, or `None` when no 64-bit magic satisfies the
    /// exactness condition (or `divisor == 0`).
    pub fn new(divisor: u64, max_numerator: u64) -> Option<Self> {
        if divisor == 0 {
            return None;
        }
        if divisor.is_power_of_two() {
            // (x · 1) >> log2(d) is exact for every u64 numerator.
            return Some(MagicDivisor {
                magic: 1,
                shift: divisor.trailing_zeros(),
                divisor,
                max_numerator: u64::MAX,
            });
        }
        for shift in 64..128u32 {
            let pow = 1u128 << shift;
            let magic = pow / divisor as u128 + 1;
            if magic > u64::MAX as u128 {
                // The magic only grows with the shift; nothing left to try.
                break;
            }
            // Exactness (Granlund–Montgomery): with f = m·d − 2^p,
            // ⌊x·m / 2^p⌋ = ⌊x/d⌋ for all x ≤ X  iff  f·X < 2^p.
            let error = magic * divisor as u128 - pow;
            if error * (max_numerator as u128) < pow {
                return Some(MagicDivisor {
                    magic: magic as u64,
                    shift,
                    divisor,
                    max_numerator,
                });
            }
        }
        None
    }

    /// The divisor this reciprocal stands for.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// The largest numerator the exactness proof covers.
    #[inline]
    pub fn max_numerator(&self) -> u64 {
        self.max_numerator
    }

    /// `x / self.divisor()`, by multiply–shift.
    ///
    /// Exact for `x ≤ self.max_numerator()`; larger numerators are a logic
    /// error (checked in debug builds).
    #[inline]
    pub fn divide(&self, x: u64) -> u64 {
        debug_assert!(x <= self.max_numerator, "numerator beyond proven range");
        ((x as u128 * self.magic as u128) >> self.shift) as u64
    }

    /// `(x / d, x % d)` in one multiply–shift and one multiply-subtract.
    #[inline]
    pub fn div_rem(&self, x: u64) -> (u64, u64) {
        let q = self.divide(x);
        (q, x - q * self.divisor)
    }
}

/// A structure-of-arrays batch of up to [`LANES`] radix-`L` representations:
/// one flat `u32` plane per dimension, lane-indexed (see the module docs for
/// the layout).
///
/// A `DigitPlanes` value is scratch: allocate once per sweep with
/// [`DigitPlanes::for_base`], refill per batch with [`DigitPlanes::decode`]
/// or [`DigitPlanes::decode_range`], and read planes in per-dimension loops.
/// Lanes at and beyond [`DigitPlanes::len`] hold unspecified (but in-range)
/// digits so per-dimension sweeps can run over the full fixed width.
#[derive(Clone, Debug)]
pub struct DigitPlanes {
    /// `dim · LANES` digits, plane-major: digit `j` of lane `i` at
    /// `planes[j · LANES + i]`.
    planes: Vec<u32>,
    dim: usize,
    len: usize,
}

impl DigitPlanes {
    /// Allocates a zeroed batch shaped for `base` (one plane per dimension).
    pub fn for_base(base: &RadixBase) -> Self {
        DigitPlanes {
            planes: vec![0u32; base.dim() * LANES],
            dim: base.dim(),
            len: 0,
        }
    }

    /// The number of dimensions (planes).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of lanes holding decoded indices after the last
    /// `decode`/`decode_range` call.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch currently holds no decoded indices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The digit plane of dimension `j`: `LANES` digits, lane-indexed.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    #[inline]
    pub fn plane(&self, j: usize) -> &[u32] {
        &self.planes[j * LANES..(j + 1) * LANES]
    }

    /// Decodes a gather of up to [`LANES`] arbitrary indices into the
    /// planes, one strength-reduced per-dimension sweep at a time.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::IndexOutOfRange`] if any index is `>= n`
    /// (the planes are left in an unspecified state in that case).
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() > LANES` or the base's dimension differs
    /// from this batch's.
    pub fn decode(&mut self, base: &RadixBase, indices: &[u64]) -> Result<()> {
        assert!(indices.len() <= LANES, "batch wider than LANES");
        assert_eq!(self.dim, base.dim(), "base dimension mismatch");
        for &x in indices {
            if x >= base.size() {
                return Err(MixedRadixError::IndexOutOfRange {
                    index: x,
                    size: base.size(),
                });
            }
        }
        self.len = indices.len();
        // Padding lanes decode index 0 so every per-dimension loop below has
        // a fixed LANES trip count (straight-line, vectorizable).
        let mut rem = [0u64; LANES];
        rem[..indices.len()].copy_from_slice(indices);
        rem[indices.len()..].fill(0);
        // Peel least-significant-first: x̂_j = rem mod l_j, rem /= l_j. The
        // per-radix reciprocal is shared with the scalar codec via
        // `RadixBase::divider`.
        for j in (0..self.dim).rev() {
            let l = base.radix(j) as u64;
            let plane = &mut self.planes[j * LANES..(j + 1) * LANES];
            match base.divider(j) {
                Some(m) => {
                    for (digit, x) in plane.iter_mut().zip(rem.iter_mut()) {
                        let (q, r) = m.div_rem(*x);
                        *digit = r as u32;
                        *x = q;
                    }
                }
                None => {
                    for (digit, x) in plane.iter_mut().zip(rem.iter_mut()) {
                        let q = *x / l;
                        *digit = (*x - q * l) as u32;
                        *x = q;
                    }
                }
            }
        }
        Ok(())
    }

    /// Decodes the consecutive index range `start .. start + count` into the
    /// planes with the odometer fill: digit `j` changes only at multiples of
    /// the weight `w_{j+1}`, so each plane is a run-length fill with two
    /// divisions per *batch* instead of one per lane.
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::IndexOutOfRange`] if the range reaches
    /// past `n`.
    ///
    /// # Panics
    ///
    /// Panics if `count > LANES` or the base's dimension differs from this
    /// batch's.
    pub fn decode_range(&mut self, base: &RadixBase, start: u64, count: usize) -> Result<()> {
        assert!(count <= LANES, "batch wider than LANES");
        assert_eq!(self.dim, base.dim(), "base dimension mismatch");
        if count as u64 > base.size() || start > base.size() - count as u64 {
            return Err(MixedRadixError::IndexOutOfRange {
                index: start + count as u64 - 1,
                size: base.size(),
            });
        }
        self.len = count;
        for j in 0..self.dim {
            let w = base.weight(j + 1);
            let l = base.radix(j);
            let plane = &mut self.planes[j * LANES..(j + 1) * LANES];
            // digit_j(x) = (x / w) mod l increments (mod l) at every
            // multiple of w; fill runs between those boundaries. Padding
            // lanes continue the same odometer pattern.
            let q = start / w;
            let mut digit = (q % l as u64) as u32;
            let mut pos = 0usize;
            let mut run = ((w - start % w).min(LANES as u64)) as usize;
            loop {
                plane[pos..pos + run].fill(digit);
                pos += run;
                if pos >= LANES {
                    break;
                }
                digit += 1;
                if digit == l {
                    digit = 0;
                }
                run = w.min((LANES - pos) as u64) as usize;
            }
        }
        Ok(())
    }

    /// Re-encodes lane `lane` into its linear index (`Σ_k x̂_k · w_k`).
    ///
    /// # Errors
    ///
    /// Returns [`MixedRadixError::DigitOutOfRange`] if a digit exceeds its
    /// radix (possible only after external plane mutation).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.len()` or the base's dimension differs.
    pub fn encode(&self, base: &RadixBase, lane: usize) -> Result<u64> {
        assert!(lane < self.len, "lane beyond decoded batch");
        assert_eq!(self.dim, base.dim(), "base dimension mismatch");
        let mut x = 0u64;
        for j in 0..self.dim {
            let digit = self.planes[j * LANES + lane] as u64;
            if digit >= base.radix(j) as u64 {
                return Err(MixedRadixError::DigitOutOfRange {
                    position: j,
                    digit,
                    radix: base.radix(j) as u64,
                });
            }
            x += digit * base.weight(j + 1);
        }
        Ok(x)
    }

    /// Re-encodes every decoded lane into `out[..self.len()]` with one
    /// multiply–add sweep per dimension — the batch twin of
    /// [`DigitPlanes::encode`], skipping per-digit validation (the planes
    /// were produced by a decode, so digits are in range by construction).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < self.len()` or the base's dimension differs.
    pub fn encode_into(&self, base: &RadixBase, out: &mut [u64]) {
        assert!(out.len() >= self.len, "output narrower than batch");
        assert_eq!(self.dim, base.dim(), "base dimension mismatch");
        let out = &mut out[..self.len];
        out.fill(0);
        for j in 0..self.dim {
            let w = base.weight(j + 1);
            let plane = &self.planes[j * LANES..(j + 1) * LANES];
            for (x, &digit) in out.iter_mut().zip(plane.iter()) {
                *x += digit as u64 * w;
            }
        }
    }

    /// Gathers lane `lane` into a scalar digit list.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.len()`.
    pub fn get(&self, lane: usize) -> Digits {
        assert!(lane < self.len, "lane beyond decoded batch");
        let mut out = Digits::zero(self.dim).expect("dim <= MAX_DIM");
        for j in 0..self.dim {
            out.set(j, self.planes[j * LANES + lane]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(radices: &[u32]) -> RadixBase {
        RadixBase::new(radices.to_vec()).unwrap()
    }

    #[test]
    fn magic_matches_hardware_division_exhaustively_per_radix() {
        // Every radix a real shape uses (plus awkward primes and composites)
        // against hardware division over the full proven numerator range.
        for divisor in 2u64..=512 {
            let limit = divisor * divisor * 4;
            let m = MagicDivisor::new(divisor, limit).expect("small ranges always admit a magic");
            for x in 0..=limit {
                assert_eq!(m.divide(x), x / divisor, "d={divisor} x={x}");
                let (q, r) = m.div_rem(x);
                assert_eq!((q, r), (x / divisor, x % divisor), "d={divisor} x={x}");
            }
        }
    }

    #[test]
    fn magic_is_exact_at_the_edges_of_huge_ranges() {
        // Spot the failure-prone numerators: just below/at multiples of the
        // divisor near the top of the proven range.
        for divisor in [3u64, 5, 6, 7, 10, 24, 1_000_003, u32::MAX as u64] {
            for max in [1u64 << 20, 1 << 40, 1 << 52] {
                let m = MagicDivisor::new(divisor, max).expect("range admits a magic");
                let mut probes = vec![0, 1, divisor - 1, divisor, divisor + 1, max - 1, max];
                let top = max / divisor * divisor;
                probes.extend([top.saturating_sub(1), top, (top + 1).min(max)]);
                for x in probes.into_iter().filter(|&x| x <= max) {
                    assert_eq!(m.divide(x), x / divisor, "d={divisor} max={max} x={x}");
                }
            }
        }
    }

    #[test]
    fn power_of_two_magics_cover_every_u64() {
        for k in 0..=63u32 {
            let divisor = 1u64 << k;
            let m = MagicDivisor::new(divisor, u64::MAX).expect("powers of two always work");
            assert_eq!(m.max_numerator(), u64::MAX);
            for x in [0u64, 1, divisor - 1, divisor, u64::MAX - 1, u64::MAX] {
                assert_eq!(m.divide(x), x / divisor, "d=2^{k} x={x}");
            }
        }
    }

    #[test]
    fn impossible_ranges_are_rejected_not_mis_divided() {
        assert!(MagicDivisor::new(0, 10).is_none());
        // Divisor 7 over the full u64 range: every feasible shift (64..=66,
        // beyond which the magic overflows u64) leaves f · X ≥ 2^shift, so
        // the checked constructor must refuse rather than return an inexact
        // reciprocal.
        assert!(MagicDivisor::new(7, u64::MAX).is_none());
        // Divisor 3 only barely works: shift 64 has f = 2 (refused for the
        // full range) but shift 65 has f = 1, which covers every u64.
        let m = MagicDivisor::new(3, u64::MAX).expect("f = 1 at shift 65");
        assert_eq!(m.divide(u64::MAX), u64::MAX / 3);
    }

    #[test]
    fn planes_match_scalar_decode_on_the_paper_base() {
        let b = base(&[4, 2, 3]);
        let mut planes = DigitPlanes::for_base(&b);
        let indices: Vec<u64> = (0..b.size()).collect();
        planes
            .decode(&b, &indices[..LANES.min(indices.len())])
            .unwrap();
        for lane in 0..planes.len() {
            assert_eq!(planes.get(lane), b.to_digits(lane as u64).unwrap());
            assert_eq!(planes.encode(&b, lane).unwrap(), lane as u64);
        }
    }

    #[test]
    fn decode_range_matches_gather_decode_across_batch_offsets() {
        // Offsets that straddle run boundaries in every dimension, plus a
        // ragged final batch.
        let b = base(&[5, 3, 7]); // n = 105, not a multiple of 64
        let mut by_range = DigitPlanes::for_base(&b);
        let mut by_gather = DigitPlanes::for_base(&b);
        let mut start = 0u64;
        while start < b.size() {
            let count = ((b.size() - start) as usize).min(LANES);
            by_range.decode_range(&b, start, count).unwrap();
            let indices: Vec<u64> = (start..start + count as u64).collect();
            by_gather.decode(&b, &indices).unwrap();
            assert_eq!(by_range.len(), count);
            for lane in 0..count {
                assert_eq!(
                    by_range.get(lane),
                    by_gather.get(lane),
                    "start={start} lane={lane}"
                );
            }
            start += count as u64;
        }
    }

    #[test]
    fn encode_into_round_trips_a_batch() {
        let b = base(&[4, 2, 3]);
        let mut planes = DigitPlanes::for_base(&b);
        planes.decode_range(&b, 7, 17).unwrap();
        let mut out = [0u64; LANES];
        planes.encode_into(&b, &mut out);
        for (lane, &x) in out[..17].iter().enumerate() {
            assert_eq!(x, 7 + lane as u64);
        }
    }

    #[test]
    fn out_of_range_batches_are_rejected() {
        let b = base(&[4, 2, 3]);
        let mut planes = DigitPlanes::for_base(&b);
        assert!(matches!(
            planes.decode(&b, &[0, 24]),
            Err(MixedRadixError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            planes.decode_range(&b, 20, 5),
            Err(MixedRadixError::IndexOutOfRange { .. })
        ));
        // In-range gathers and ranges still work afterwards.
        planes.decode(&b, &[23]).unwrap();
        assert_eq!(planes.get(0).as_slice(), &[3, 1, 2]);
        planes.decode_range(&b, 20, 4).unwrap();
        assert_eq!(planes.len(), 4);
    }

    #[test]
    fn tampered_planes_fail_scalar_encode_validation() {
        let b = base(&[4, 2, 3]);
        let mut planes = DigitPlanes::for_base(&b);
        planes.decode(&b, &[0]).unwrap();
        planes.planes[LANES] = 9; // plane 1 (radix 2), lane 0
        assert!(matches!(
            planes.encode(&b, 0),
            Err(MixedRadixError::DigitOutOfRange { position: 1, .. })
        ));
    }

    #[test]
    fn single_dimension_ring_decodes_as_identity_digits() {
        let b = base(&[1 << 20]);
        let mut planes = DigitPlanes::for_base(&b);
        planes.decode_range(&b, (1 << 20) - 10, 10).unwrap();
        for lane in 0..10 {
            assert_eq!(planes.plane(0)[lane] as u64, (1 << 20) - 10 + lane as u64);
        }
    }
}
