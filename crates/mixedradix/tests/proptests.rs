//! Property-based tests for the mixed-radix numbering system.

use mixedradix::distance::{delta_m_index, delta_t_index, mesh_diameter, torus_diameter};
use mixedradix::prelude::*;
use proptest::prelude::*;

/// Strategy producing a small radix base (dimension 1–5, radices 2–7, size
/// capped so that exhaustive loops stay cheap).
fn small_base() -> impl Strategy<Value = RadixBase> {
    proptest::collection::vec(2u32..=7, 1..=5)
        .prop_filter("keep sizes manageable", |radices| {
            radices.iter().map(|&l| l as u64).product::<u64>() <= 2000
        })
        .prop_map(|radices| RadixBase::new(radices).unwrap())
}

proptest! {
    #[test]
    fn digits_round_trip(base in small_base(), x in 0u64..2000) {
        let x = x % base.size();
        let digits = base.to_digits(x).unwrap();
        prop_assert!(base.contains(&digits));
        prop_assert_eq!(base.to_index(&digits).unwrap(), x);
    }

    #[test]
    fn every_digit_is_within_its_radix(base in small_base(), x in 0u64..2000) {
        let x = x % base.size();
        let digits = base.to_digits(x).unwrap();
        for j in 0..base.dim() {
            prop_assert!(digits.get(j) < base.radix(j));
        }
    }

    #[test]
    fn representation_is_unique(base in small_base()) {
        // Distinct integers have distinct radix-L representations.
        let mut seen = std::collections::HashSet::new();
        for x in 0..base.size() {
            let digits = base.to_digits(x).unwrap();
            prop_assert!(seen.insert(digits.as_slice().to_vec()));
        }
    }

    #[test]
    fn mesh_distance_dominates_torus_distance(
        base in small_base(),
        x in 0u64..2000,
        y in 0u64..2000,
    ) {
        let x = x % base.size();
        let y = y % base.size();
        let dm = delta_m_index(&base, x, y).unwrap();
        let dt = delta_t_index(&base, x, y).unwrap();
        prop_assert!(dm >= dt);
        prop_assert!(dm <= mesh_diameter(&base));
        prop_assert!(dt <= torus_diameter(&base));
    }

    #[test]
    fn distances_are_metrics(
        base in small_base(),
        x in 0u64..2000,
        y in 0u64..2000,
        z in 0u64..2000,
    ) {
        let n = base.size();
        let (x, y, z) = (x % n, y % n, z % n);
        let dm = |a, b| delta_m_index(&base, a, b).unwrap();
        let dt = |a, b| delta_t_index(&base, a, b).unwrap();
        // Identity of indiscernibles.
        prop_assert_eq!(dm(x, x), 0);
        prop_assert_eq!(dt(x, x), 0);
        prop_assert_eq!(dm(x, y) == 0, x == y);
        prop_assert_eq!(dt(x, y) == 0, x == y);
        // Symmetry.
        prop_assert_eq!(dm(x, y), dm(y, x));
        prop_assert_eq!(dt(x, y), dt(y, x));
        // Triangle inequality.
        prop_assert!(dm(x, z) <= dm(x, y) + dm(y, z));
        prop_assert!(dt(x, z) <= dt(x, y) + dt(y, z));
    }

    #[test]
    fn natural_sequence_is_a_bijection_with_spread_gt_one(base in small_base()) {
        let p = NaturalSequence::new(base.clone());
        prop_assert!(p.is_bijection());
        if base.dim() > 1 {
            prop_assert!(p.acyclic_spread_mesh() > 1);
        } else {
            prop_assert_eq!(p.acyclic_spread_mesh(), 1);
        }
    }

    #[test]
    fn permutation_preserves_distances_up_to_relabelling(
        base in small_base(),
        x in 0u64..2000,
        y in 0u64..2000,
        seed in 0u64..1000,
    ) {
        // Applying the same permutation to the base and to both operands
        // leaves both distance measures unchanged.
        let d = base.dim();
        // Build a deterministic permutation from the seed (Fisher–Yates with
        // a tiny LCG so the test stays dependency-free).
        let mut map: Vec<usize> = (0..d).collect();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..d).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            map.swap(i, j);
        }
        let perm = Permutation::new(map).unwrap();
        let pbase = base.permute(&perm).unwrap();

        let x = x % base.size();
        let y = y % base.size();
        let a = base.to_digits(x).unwrap();
        let b = base.to_digits(y).unwrap();
        let pa = perm.apply_digits(&a).unwrap();
        let pb = perm.apply_digits(&b).unwrap();

        prop_assert_eq!(
            delta_m(&base, &a, &b).unwrap(),
            delta_m(&pbase, &pa, &pb).unwrap()
        );
        prop_assert_eq!(
            delta_t(&base, &a, &b).unwrap(),
            delta_t(&pbase, &pa, &pb).unwrap()
        );
    }

    #[test]
    fn binary_gray_neighbours_differ_in_one_bit(i in 0u64..1_000_000) {
        let a = binary_gray(i);
        let b = binary_gray(i + 1);
        prop_assert_eq!((a ^ b).count_ones(), 1);
        prop_assert_eq!(binary_gray_inverse(a), i);
    }

    #[test]
    fn concat_to_index_is_positional(base in small_base(), other in small_base(), x in 0u64..2000, y in 0u64..2000) {
        // u_{L∘M}^{-1}(a ∘ b) = u_L^{-1}(a) * |M| + u_M^{-1}(b)
        if base.dim() + other.dim() <= MAX_DIM {
            let x = x % base.size();
            let y = y % other.size();
            let joined = base.concat(&other).unwrap();
            let a = base.to_digits(x).unwrap();
            let b = other.to_digits(y).unwrap();
            let ab = a.concat(&b).unwrap();
            prop_assert_eq!(joined.to_index(&ab).unwrap(), x * other.size() + y);
        }
    }
}

/// Builds a shape hostile to the structure-of-arrays codec from raw fuzz
/// input: a single-dimension ring up to 2²⁰ nodes (one huge plane), the
/// maximum-dimension binary shape (many tiny planes), or a ragged mixed base
/// whose size is not a multiple of the batch width.
fn hostile_base(selector: u8, ring: u32, radices: Vec<u32>) -> RadixBase {
    match selector % 3 {
        0 => RadixBase::new(vec![ring]).unwrap(),
        1 => RadixBase::binary(MAX_DIM).unwrap(),
        _ => {
            // Keep a prefix of the radices whose product stays manageable.
            let mut kept = Vec::new();
            let mut size = 1u64;
            for l in radices {
                if size * l as u64 > 1 << 22 {
                    break;
                }
                size *= l as u64;
                kept.push(l);
            }
            if kept.is_empty() {
                kept.push(2);
            }
            RadixBase::new(kept).unwrap()
        }
    }
}

proptest! {
    #[test]
    fn soa_gather_decode_matches_the_scalar_codec(
        selector in 0u8..3,
        ring in 2u32..=(1 << 20),
        radices in proptest::collection::vec(2u32..=9, 1..=8),
        raw in proptest::collection::vec(0u64..u64::MAX, 1..=LANES),
    ) {
        // Arbitrary (not necessarily consecutive) indices, arbitrary batch
        // length — including the ragged lengths a final batch would see.
        let base = hostile_base(selector, ring, radices);
        let indices: Vec<u64> = raw.iter().map(|&x| x % base.size()).collect();
        let mut planes = DigitPlanes::for_base(&base);
        planes.decode(&base, &indices).unwrap();
        for (lane, &x) in indices.iter().enumerate() {
            let scalar = base.to_digits(x).unwrap();
            prop_assert_eq!(planes.get(lane), scalar.clone());
            for j in 0..base.dim() {
                prop_assert_eq!(planes.plane(j)[lane], scalar.get(j));
            }
            prop_assert_eq!(planes.encode(&base, lane).unwrap(), x);
        }
    }

    #[test]
    fn soa_range_decode_matches_the_scalar_codec(
        selector in 0u8..3,
        ring in 2u32..=(1 << 20),
        radices in proptest::collection::vec(2u32..=9, 1..=8),
        start_seed in 0u64..u64::MAX,
        count in 1usize..=LANES,
    ) {
        let base = hostile_base(selector, ring, radices);
        let count = count.min(base.size() as usize);
        let start = start_seed % (base.size() - count as u64 + 1);
        let mut planes = DigitPlanes::for_base(&base);
        planes.decode_range(&base, start, count).unwrap();
        let mut encoded = vec![0u64; count];
        planes.encode_into(&base, &mut encoded);
        for (lane, &back) in encoded.iter().enumerate() {
            let x = start + lane as u64;
            prop_assert_eq!(planes.get(lane), base.to_digits(x).unwrap());
            prop_assert_eq!(back, x);
        }
    }

    #[test]
    fn radix_one_dimensions_are_rejected_before_either_codec(
        mut radices in proptest::collection::vec(2u32..=9, 1..=7),
        position in 0usize..64,
    ) {
        // Definition 7 requires l_j > 1, so neither the scalar nor the SoA
        // codec ever sees a radix-1 plane: construction already fails.
        radices.insert(position % (radices.len() + 1), 1);
        let rejected = matches!(
            RadixBase::new(radices),
            Err(MixedRadixError::RadixTooSmall { .. })
        );
        prop_assert!(rejected);
    }
}
