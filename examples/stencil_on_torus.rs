//! A scientific-computing style scenario: place a 2-D stencil task graph on a
//! higher-dimensional torus machine, and measure how the placement affects
//! routed traffic with the `netsim` simulator.
//!
//! The task graph is an (8,16)-mesh (each task exchanges boundary data with
//! its 4 neighbors, the classic 5-point stencil pattern); the machine is a
//! (2,4,4,4)-torus with the same number of nodes. The paper's
//! increasing-dimension embedding keeps every neighbor exchange at one hop; a
//! naive row-major placement does not.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stencil_on_torus
//! ```

use torus_mesh_embeddings::prelude::*;

fn main() {
    // The application: an 8 × 16 grid of tasks (5-point stencil).
    let stencil = Grid::mesh(Shape::new(vec![8, 16]).unwrap());
    // The machine: a (2,4,4,4)-torus with 128 nodes.
    let machine = Grid::torus(Shape::new(vec![2, 4, 4, 4]).unwrap());
    assert_eq!(stencil.size(), machine.size());

    println!("task graph : {stencil} ({} tasks)", stencil.size());
    println!("machine    : {machine} ({} nodes)", machine.size());
    println!();

    // ------------------------------------------------------------------
    // Placement 1: the paper's embedding (Theorem 32 — unit dilation).
    // ------------------------------------------------------------------
    let embedding = embed(&stencil, &machine).unwrap();
    println!("paper embedding: {}", embedding.name());
    println!("  dilation            : {}", embedding.dilation());

    let network = Network::new(machine.clone());
    let workload = Workload::from_task_graph(&stencil);

    let paper_placement = Placement::from_embedding(&embedding);
    let paper_stats = simulate(&network, &workload, &paper_placement, 4);
    println!("  total hops (4 rounds): {}", paper_stats.total_hops);
    println!("  max hops per message : {}", paper_stats.max_hops);
    println!("  cycles to drain      : {}", paper_stats.cycles);
    println!();

    // ------------------------------------------------------------------
    // Placement 2: naive row-major placement (task i on node i).
    // ------------------------------------------------------------------
    let naive_placement = Placement::identity(stencil.size());
    let naive_stats = simulate(&network, &workload, &naive_placement, 4);
    println!("row-major placement:");
    println!("  total hops (4 rounds): {}", naive_stats.total_hops);
    println!("  max hops per message : {}", naive_stats.max_hops);
    println!("  cycles to drain      : {}", naive_stats.cycles);
    println!();

    let hop_ratio = naive_stats.total_hops as f64 / paper_stats.total_hops as f64;
    let cycle_ratio = naive_stats.cycles as f64 / paper_stats.cycles as f64;
    println!("naive / paper traffic ratio : {hop_ratio:.2}x hops, {cycle_ratio:.2}x cycles");
}
