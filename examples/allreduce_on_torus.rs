//! Ring allreduce scheduled over the paper's Hamiltonian-circuit embeddings.
//!
//! Corollary 29 (every torus has a Hamiltonian circuit) and Corollary 25
//! (every even-size mesh of dimension ≥ 2 has one) are exactly what a
//! ring-based collective needs: a cyclic node order in which every hop is a
//! physical link. This example schedules a ring allreduce over that order on
//! a range of machine topologies and compares it with the naive
//! natural-order ring.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example allreduce_on_torus
//! ```

use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

fn main() {
    let machines: Vec<Grid> = vec![
        Grid::torus(shape(&[8, 8])),
        Grid::mesh(shape(&[8, 8])),
        Grid::torus(shape(&[4, 4, 4])),
        Grid::mesh(shape(&[4, 4, 4])),
        Grid::hypercube(6).unwrap(),
        Grid::torus(shape(&[5, 5, 5])),
    ];

    let mut table = Table::new(vec![
        "machine",
        "nodes",
        "ring order",
        "ring dilation",
        "phases",
        "cycles",
        "slowdown vs ideal",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Right,
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
    ]);

    for machine in &machines {
        let network = Network::new(machine.clone());
        let paper = RingOrder::from_paper_embedding(machine).unwrap();
        let naive = RingOrder::natural(machine.size());
        for (label, order) in [("paper h_L circuit", &paper), ("natural order", &naive)] {
            let stats = simulate_ring_allreduce(&network, order);
            table.push_row(vec![
                machine.to_string(),
                machine.size().to_string(),
                label.to_string(),
                stats.ring_dilation.to_string(),
                stats.phases.to_string(),
                stats.total_cycles.to_string(),
                format!("{:.2}x", stats.slowdown()),
            ]);
        }
    }

    println!("== Ring allreduce: Hamiltonian-circuit ring vs natural order ==");
    println!("{table}");
    println!(
        "The paper's circuit keeps every phase at one cycle, so the collective\n\
         finishes in the textbook 2(n-1) cycles on every machine; the natural\n\
         order pays both longer routes and link contention."
    );
}
