//! Driving `explab` as a library: build a sweep plan in code, run it
//! sharded, and inspect trials, tables and JSONL without the `lab` CLI.
//!
//! Run with:
//!
//! ```text
//! cargo run --example sweep_small
//! ```

use explab::executor::{expand, run};
use explab::plan::{Family, ObjectiveKind, OptimSpec, SweepPlan, WirelengthSpec, WorkloadSpec};
use explab::report::family_overview;

fn main() {
    // ------------------------------------------------------------------
    // 1. A plan is plain data: families × workloads × a seed. This one
    //    sweeps every ring-into-grid pair up to 16 nodes and every
    //    torus-into-same-shape-mesh pair up to 16 nodes.
    // ------------------------------------------------------------------
    let plan = SweepPlan {
        name: "sweep-small".into(),
        seed: 42,
        rounds: 1,
        families: vec![
            Family::RingInto {
                max_size: 16,
                max_dim: 3,
            },
            Family::SameShape {
                max_size: 16,
                max_dim: 3,
            },
            Family::HypercubeTorus { max_dim: 3 },
        ],
        workloads: vec![WorkloadSpec::Neighbor, WorkloadSpec::Tornado],
        // Refine every supported placement with two independently-seeded
        // 200-step annealing walks under the max-congestion objective,
        // keeping the best (set to `None` to skip the stage).
        // The portfolio strategy gives the non-zero shards compound move
        // repertoires (k-cycles, block swaps) and hotter schedules.
        optimize: Some(OptimSpec {
            objective: ObjectiveKind::Congestion,
            steps: 200,
            shards: 2,
            portfolio: true,
        }),
        // Anneal hypercube-guest trials under the wirelength objective and
        // compare with Tang's exact analytic minimum (Table 11).
        wirelength: Some(WirelengthSpec {
            steps: 150,
            shards: 2,
        }),
        // No degraded-operation rows here; set a `ChaosSpec` to also
        // re-simulate every placement under seeded link loss.
        chaos: None,
    };
    println!(
        "plan {:?} expands to {} trials\n",
        plan.name,
        expand(&plan).len()
    );

    // ------------------------------------------------------------------
    // 2. Run it across 4 workers. The records come back in trial order
    //    and are bit-identical for any worker count.
    // ------------------------------------------------------------------
    let outcome = run(&plan, 4);
    assert_eq!(outcome.records, run(&plan, 1).records);
    println!("{}", family_overview(&outcome));

    // ------------------------------------------------------------------
    // 3. Each record carries the full measurement of one pair.
    // ------------------------------------------------------------------
    let record = outcome
        .records
        .iter()
        .filter_map(|r| r.metrics().map(|m| (r, m)))
        .max_by_key(|(_, m)| m.measured_dilation)
        .expect("some trial is supported");
    println!(
        "worst pair: {} -> {} via {} (dilation {} <= predicted {}, max congestion {})",
        record.0.guest,
        record.0.host,
        record.1.construction,
        record.1.measured_dilation,
        record.1.predicted_dilation,
        record.1.max_congestion,
    );
    println!(
        "bound violations: {} (always 0 unless a theorem is broken)\n",
        outcome.bound_violations().len()
    );

    // ------------------------------------------------------------------
    // 3b. Hypercube-guest trials additionally carry the wirelength stage:
    //     constructive vs annealed total route length vs Tang's bound.
    // ------------------------------------------------------------------
    for (record, w) in outcome.records.iter().filter_map(|r| {
        r.metrics()
            .and_then(|m| m.wirelength.as_ref())
            .map(|w| (r, w))
    }) {
        println!(
            "wirelength {} -> {}: constructive {}, annealed {}, Tang bound {}",
            record.guest, record.host, w.constructive, w.optimized, w.bound,
        );
    }
    println!();

    // ------------------------------------------------------------------
    // 4. The same records serialize to one JSON line per trial — what
    //    `lab run --jsonl` writes to disk.
    // ------------------------------------------------------------------
    let jsonl = outcome.to_jsonl();
    println!("first JSONL record:\n{}", jsonl.lines().next().unwrap());
}
