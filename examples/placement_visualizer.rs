//! Draws the paper's Figure-10-style pictures in the terminal: where each
//! node of a line, ring or higher-dimensional guest lands inside a mesh or
//! torus host, together with the full quality report of each embedding and a
//! per-step report of a multi-step chain.
//!
//! Run with:
//!
//! ```text
//! cargo run --example placement_visualizer
//! ```

use embeddings::basic::{embed_line_in, embed_ring_in};
use embeddings::chain::EmbeddingChain;
use embeddings::metrics::EmbeddingMetrics;
use gridviz::render::render_embedding;
use gridviz::table::{Alignment, Table};
use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

fn show(embedding: &Embedding) {
    println!("{}", render_embedding(embedding).unwrap());
    let metrics = EmbeddingMetrics::measure(embedding).unwrap();
    println!("{metrics}");
    println!();
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Figure 10: a line and a ring of size 24 inside a (4,6)-mesh and
    //    the (4,2,3)-mesh of the paper's running example.
    // ------------------------------------------------------------------
    println!("== Figure 10: basic embeddings ==\n");
    let flat_mesh = Grid::mesh(shape(&[4, 6]));
    show(&embed_line_in(&flat_mesh).unwrap());
    show(&embed_ring_in(&flat_mesh).unwrap());

    let paper_mesh = Grid::mesh(shape(&[4, 2, 3]));
    show(&embed_ring_in(&paper_mesh).unwrap());

    // ------------------------------------------------------------------
    // 2. Figure 12: the (3,3,6)-mesh inside the (6,9)-mesh (dilation 3),
    //    rendered so the supernode structure is visible as 3×2 blocks of
    //    consecutive guest indices.
    // ------------------------------------------------------------------
    println!("== Figure 12: general reduction, (3,3,6)-mesh -> (6,9)-mesh ==\n");
    let (guest, host) = embeddings::paper_examples::fig12_grids();
    let reduction = embed(&guest, &host).unwrap();
    show(&reduction);

    // ------------------------------------------------------------------
    // 3. A chain: hypercube(16) -> (4,4)-mesh -> line(16), reported step by
    //    step. The composed dilation respects the product of the step
    //    dilations.
    // ------------------------------------------------------------------
    println!("== Chain: hypercube(16) -> (4,4)-mesh -> line(16) ==\n");
    let cube = Grid::hypercube(4).unwrap();
    let mid = Grid::mesh(shape(&[4, 4]));
    let line = Grid::line(16).unwrap();
    let chain = EmbeddingChain::through(&cube, &[mid], &line).unwrap();

    let mut steps = Table::new(vec!["step", "construction", "guest", "host", "dilation"])
        .with_alignments(vec![
            Alignment::Right,
            Alignment::Left,
            Alignment::Left,
            Alignment::Left,
            Alignment::Right,
        ]);
    // Iterate the steps directly: the full `chain.report()` would also
    // compose the chain and sweep the composed dilation, which the code
    // below already does once for `show`.
    for (i, step) in chain.steps().iter().enumerate() {
        steps.push_row(vec![
            (i + 1).to_string(),
            step.name().to_string(),
            step.guest().to_string(),
            step.host().to_string(),
            step.dilation().to_string(),
        ]);
    }
    println!("{steps}");

    let composed = chain.compose().unwrap();
    println!(
        "composed dilation {} <= product bound {}",
        composed.dilation(),
        chain.dilation_product_bound()
    );
    println!();
    show(&composed);
}
