//! Quickstart: embed lines, rings and toruses into meshes and inspect the
//! dilation cost.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use torus_mesh_embeddings::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's running example: a 24-node ring in a (4,2,3)-mesh.
    // ------------------------------------------------------------------
    let ring = Grid::ring(24).unwrap();
    let mesh = Grid::mesh(Shape::new(vec![4, 2, 3]).unwrap());
    let embedding = embed(&ring, &mesh).unwrap();

    println!("== Ring of 24 nodes in a (4,2,3)-mesh ==");
    println!("construction : {}", embedding.name());
    println!("dilation     : {}", embedding.dilation());
    println!("first images : ");
    for x in 0..6 {
        println!("  ring node {x:2} -> mesh node {}", embedding.map(x));
    }
    println!();

    // ------------------------------------------------------------------
    // 2. A torus in a mesh of the same shape costs dilation 2 (Lemma 36)...
    // ------------------------------------------------------------------
    let torus = Grid::torus(Shape::new(vec![6, 6]).unwrap());
    let same_mesh = Grid::mesh(Shape::new(vec![6, 6]).unwrap());
    let same = embed(&torus, &same_mesh).unwrap();
    println!("== (6,6)-torus in a (6,6)-mesh ==");
    println!("construction : {}", same.name());
    println!("dilation     : {}", same.dilation());
    println!();

    // ------------------------------------------------------------------
    // 3. ...but a torus in a *higher-dimensional* mesh can reach dilation 1
    //    when the shapes satisfy the expansion condition (Theorem 32).
    // ------------------------------------------------------------------
    let tall_mesh = Grid::mesh(Shape::new(vec![2, 3, 2, 3]).unwrap());
    let expanded = embed(&torus, &tall_mesh).unwrap();
    println!("== (6,6)-torus in a (2,3,2,3)-mesh ==");
    println!("construction : {}", expanded.name());
    println!("dilation     : {}", expanded.dilation());
    println!();

    // ------------------------------------------------------------------
    // 4. Verify an embedding independently (parallel sweep over all edges).
    // ------------------------------------------------------------------
    let report = verify(&expanded, 0).unwrap();
    println!("== Verification report ==");
    println!("injective        : {}", report.injective);
    println!("dilation         : {}", report.dilation);
    println!("average dilation : {:.3}", report.average_dilation);
    println!("edges checked    : {}", report.edges);
    println!("histogram        : {:?}", report.histogram);
}
