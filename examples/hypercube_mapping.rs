//! Hypercube mappings: Corollary 34 (grids into hypercubes with unit
//! dilation) and Corollaries 40/49 (hypercubes into grids with dilation
//! `max mᵢ / 2`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example hypercube_mapping
//! ```

use torus_mesh_embeddings::prelude::*;

fn grid_label(grid: &Grid) -> String {
    format!("{grid}")
}

fn main() {
    // ------------------------------------------------------------------
    // Corollary 34: any torus or mesh of power-of-two size embeds in the
    // hypercube of the same size with unit dilation.
    // ------------------------------------------------------------------
    println!("== Grids into hypercubes (Corollary 34) ==");
    println!("{:<24} {:>10} {:>10}", "guest", "dilation", "predicted");
    let guests = vec![
        Grid::mesh(Shape::new(vec![8, 8]).unwrap()),
        Grid::mesh(Shape::new(vec![4, 4, 4]).unwrap()),
        Grid::torus(Shape::new(vec![8, 8]).unwrap()),
        Grid::torus(Shape::new(vec![16, 4]).unwrap()),
        Grid::mesh(Shape::new(vec![32, 2]).unwrap()),
        Grid::ring(64).unwrap(),
        Grid::line(64).unwrap(),
    ];
    for guest in guests {
        let bits = guest.size().trailing_zeros() as usize;
        let hypercube = Grid::hypercube(bits).unwrap();
        let predicted = predicted_dilation(&guest, &hypercube).unwrap();
        let embedding = embed(&guest, &hypercube).unwrap();
        println!(
            "{:<24} {:>10} {:>10}",
            grid_label(&guest),
            embedding.dilation(),
            predicted
        );
    }
    println!();

    // ------------------------------------------------------------------
    // Corollaries 40 and 49: a hypercube into toruses and meshes of the same
    // size, dilation max(m_i)/2.
    // ------------------------------------------------------------------
    println!("== Hypercubes into grids (Corollaries 40 and 49) ==");
    println!(
        "{:<14} {:<20} {:>10} {:>10}",
        "guest", "host", "dilation", "predicted"
    );
    let hosts = vec![
        Grid::mesh(Shape::new(vec![8, 8]).unwrap()),
        Grid::torus(Shape::new(vec![8, 8]).unwrap()),
        Grid::mesh(Shape::new(vec![4, 4, 4]).unwrap()),
        Grid::mesh(Shape::new(vec![16, 4]).unwrap()),
        Grid::ring(64).unwrap(),
        Grid::line(64).unwrap(),
    ];
    let hypercube = Grid::hypercube(6).unwrap();
    for host in hosts {
        let predicted = predicted_dilation(&hypercube, &host).unwrap();
        let embedding = embed(&hypercube, &host).unwrap();
        println!(
            "{:<14} {:<20} {:>10} {:>10}",
            "hypercube 2^6",
            grid_label(&host),
            embedding.dilation(),
            predicted
        );
    }
    println!();

    // ------------------------------------------------------------------
    // Comparison with Harper's optimal hypercube-in-line numbering.
    // ------------------------------------------------------------------
    println!("== Hypercube in a line: paper vs. Harper's optimum ==");
    println!(
        "{:>4} {:>16} {:>16} {:>8}",
        "d", "paper 2^(d-1)", "optimal", "ratio"
    );
    for d in 1..=12u32 {
        let paper = embeddings::optimal::paper_hypercube_in_line(d);
        let optimal = embeddings::optimal::optimal_hypercube_in_line(d);
        println!(
            "{:>4} {:>16} {:>16} {:>8.3}",
            d,
            paper,
            optimal,
            paper as f64 / optimal as f64
        );
    }
}
