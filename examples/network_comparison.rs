//! Comparing interconnection networks by embedding one in another — the
//! paper's second motivating application (Section 1): the dilation cost of an
//! embedding of network `G` in network `H` measures how well `H` can emulate
//! `G`'s communication pattern.
//!
//! This example builds a matrix of dilation costs among several 64-node
//! networks (ring, line, square meshes/toruses of two and three dimensions,
//! and the 6-dimensional hypercube).
//!
//! Run with:
//!
//! ```text
//! cargo run --example network_comparison
//! ```

use torus_mesh_embeddings::prelude::*;

fn networks() -> Vec<(String, Grid)> {
    vec![
        ("ring(64)".into(), Grid::ring(64).unwrap()),
        ("line(64)".into(), Grid::line(64).unwrap()),
        (
            "(8,8)-torus".into(),
            Grid::torus(Shape::new(vec![8, 8]).unwrap()),
        ),
        (
            "(8,8)-mesh".into(),
            Grid::mesh(Shape::new(vec![8, 8]).unwrap()),
        ),
        (
            "(4,4,4)-torus".into(),
            Grid::torus(Shape::new(vec![4, 4, 4]).unwrap()),
        ),
        (
            "(4,4,4)-mesh".into(),
            Grid::mesh(Shape::new(vec![4, 4, 4]).unwrap()),
        ),
        ("hypercube 2^6".into(), Grid::hypercube(6).unwrap()),
    ]
}

fn main() {
    let nets = networks();

    println!("Dilation cost of embedding the row network (guest) in the column network (host).");
    println!("'-' marks pairs outside the paper's constructions.\n");

    // Header.
    print!("{:<16}", "guest \\ host");
    for (name, _) in &nets {
        print!("{name:>15}");
    }
    println!();

    for (guest_name, guest) in &nets {
        print!("{guest_name:<16}");
        for (_, host) in &nets {
            let cell = match embed(guest, host) {
                Ok(embedding) => embedding.dilation().to_string(),
                Err(_) => "-".to_string(),
            };
            print!("{cell:>15}");
        }
        println!();
    }

    println!();
    println!("Reading the matrix:");
    println!("* every network hosts the ring and the line with dilation 1 (Theorems 13/24/28),");
    println!("  except the line hosting the ring, which needs dilation 2 (Theorem 17);");
    println!("* the hypercube hosts every power-of-two grid with dilation 1 (Corollary 34);");
    println!("* lowering dimension pays roughly l^((d-c)/c) (Theorems 39/48/51).");
}
