//! Routing and placement comparison: classic traffic patterns on an 8×8
//! mesh and torus, under the paper's embedding-based placement versus a
//! naive identity placement, and under dimension-ordered versus Valiant
//! routing.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example routing_comparison
//! ```

use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

/// One comparison row: a named workload simulated on `network` under
/// `placement` with the given routing algorithm.
fn row(
    label: &str,
    network: &Network,
    workload: &Workload,
    placement: &Placement,
    algorithm: RoutingAlgorithm,
) -> Vec<String> {
    let stats = simulate_detailed(network, workload, placement, algorithm, 1);
    vec![
        label.to_string(),
        algorithm.name().to_string(),
        stats.messages.to_string(),
        format!("{:.2}", stats.average_hops()),
        stats.max_hops.to_string(),
        stats.link_loads.max_load().to_string(),
        stats.cycles.to_string(),
        stats.latency.p95.to_string(),
    ]
}

fn main() {
    // ------------------------------------------------------------------
    // 1. Neighbor exchange of a 64-node ring: the paper's placement keeps
    //    every message at one hop; a row-major placement pays the mesh
    //    width on the wrap-around edge.
    // ------------------------------------------------------------------
    let host = Grid::mesh(shape(&[8, 8]));
    let network = Network::new(host.clone());
    let ring = Grid::ring(64).unwrap();
    let ring_workload = Workload::from_task_graph(&ring);
    let paper = Placement::from_embedding(&embed(&ring, &host).unwrap());
    let naive = Placement::identity(64);

    let mut table = Table::new(vec![
        "placement / pattern",
        "routing",
        "msgs",
        "avg hops",
        "max hops",
        "max link load",
        "cycles",
        "p95 latency",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
    ]);
    table.push_row(row(
        "ring-64, paper placement",
        &network,
        &ring_workload,
        &paper,
        RoutingAlgorithm::DimensionOrdered,
    ));
    table.push_row(row(
        "ring-64, row-major placement",
        &network,
        &ring_workload,
        &naive,
        RoutingAlgorithm::DimensionOrdered,
    ));
    println!("== Neighbor exchange on an 8x8 mesh ==");
    println!("{table}");

    // ------------------------------------------------------------------
    // 2. Permutation patterns under the identity placement: how routing
    //    algorithms spread adversarial traffic.
    // ------------------------------------------------------------------
    let mut permutations = Table::new(vec![
        "placement / pattern",
        "routing",
        "msgs",
        "avg hops",
        "max hops",
        "max link load",
        "cycles",
        "p95 latency",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
    ]);
    let identity = Placement::identity(64);
    let named: Vec<(&str, Workload)> = vec![
        ("transpose 8x8", patterns::transpose(8, 8)),
        ("bit reversal", patterns::bit_reversal(6)),
        ("bit complement", patterns::bit_complement(6)),
        ("tornado", patterns::tornado(64)),
        ("hot spot (node 0)", patterns::hotspot(64, 0, 1)),
    ];
    for (label, workload) in &named {
        for algorithm in [
            RoutingAlgorithm::DimensionOrdered,
            RoutingAlgorithm::ReverseDimensionOrdered,
            RoutingAlgorithm::Valiant { seed: 7 },
        ] {
            permutations.push_row(row(label, &network, workload, &identity, algorithm));
        }
    }
    println!("== Permutation traffic on an 8x8 mesh, identity placement ==");
    println!("{permutations}");

    // ------------------------------------------------------------------
    // 3. The same patterns on an 8x8 torus: wrap-around links halve the
    //    average distance and the worst link load.
    // ------------------------------------------------------------------
    let torus_network = Network::new(Grid::torus(shape(&[8, 8])));
    let mut torus_table = Table::new(vec![
        "pattern",
        "mesh avg hops",
        "torus avg hops",
        "mesh max link load",
        "torus max link load",
    ])
    .with_alignments(vec![
        Alignment::Left,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
        Alignment::Right,
    ]);
    for (label, workload) in &named {
        let on_mesh = simulate_detailed(
            &network,
            workload,
            &identity,
            RoutingAlgorithm::DimensionOrdered,
            1,
        );
        let on_torus = simulate_detailed(
            &torus_network,
            workload,
            &identity,
            RoutingAlgorithm::DimensionOrdered,
            1,
        );
        torus_table.push_row(vec![
            label.to_string(),
            format!("{:.2}", on_mesh.average_hops()),
            format!("{:.2}", on_torus.average_hops()),
            on_mesh.link_loads.max_load().to_string(),
            on_torus.link_loads.max_load().to_string(),
        ]);
    }
    println!("== Mesh vs torus under the same traffic ==");
    println!("{torus_table}");
}
