//! Offline stand-in for the `crossbeam` crate, covering only
//! `crossbeam::thread::scope`, backed by `std::thread::scope` (which has
//! provided the same structured-concurrency guarantee since Rust 1.63).

pub mod thread {
    use std::thread as stdthread;

    /// A fork–join scope handle, mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so workers can spawn nested workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam this never returns `Err`: an unjoined panicking
    /// child propagates its panic here (std semantics) rather than being
    /// collected. Every call site in this workspace joins its handles and
    /// `.expect()`s the result, so the two behaviours coincide.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = crate::thread::scope(|scope| {
            let a = scope.spawn(|_| data[..50].iter().sum::<u64>());
            let b = scope.spawn(|_| data[50..].iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 4950);
    }

    #[test]
    fn nested_spawn_receives_scope() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
