//! The [`Strategy`] trait and combinators.
//!
//! A strategy generates values of an associated type from a seeded RNG.
//! `sample` returns `None` when a filter rejects the draw; the runner
//! retries (up to `ProptestConfig::max_local_rejects`). No shrinking.

use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    /// Draws one value, or `None` if a filter rejected this draw.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`; `whence` labels the filter
    /// in diagnostics (accepted for API compatibility).
    fn prop_filter<R, F>(self, whence: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _whence: whence.into(),
            pred,
        }
    }

    /// Chains into a dependent strategy derived from each generated value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// As in real proptest, a `&str` is a strategy generating strings matching
/// it as a regex. Only the subset the workspace uses is supported: a
/// concatenation of literal characters and character classes
/// (`[a-z0-9_]`-style, with ranges), each optionally quantified with
/// `{m}` or `{m,n}`.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            // Atom: a character class or a literal character.
            let class: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().expect("unterminated character class");
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            assert!(lo <= hi, "reversed range in character class");
                            set.extend(lo..=hi);
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty character class");
                set
            } else {
                vec![c]
            };
            // Quantifier: {m} or {m,n}; default exactly one.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let m = spec.trim().parse::<usize>().expect("bad quantifier");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let idx = (rng.next_u64() % class.len() as u64) as usize;
                out.push(class[idx]);
            }
        }
        Some(out)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<O::Value> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

/// A type-erased strategy, see [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.sample(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

impl_tuple_strategy!(S0 / v0);
impl_tuple_strategy!(S0 / v0, S1 / v1);
impl_tuple_strategy!(S0 / v0, S1 / v1, S2 / v2);
impl_tuple_strategy!(S0 / v0, S1 / v1, S2 / v2, S3 / v3);
impl_tuple_strategy!(S0 / v0, S1 / v1, S2 / v2, S3 / v3, S4 / v4);
impl_tuple_strategy!(S0 / v0, S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
impl_tuple_strategy!(
    S0 / v0,
    S1 / v1,
    S2 / v2,
    S3 / v3,
    S4 / v4,
    S5 / v5,
    S6 / v6
);
impl_tuple_strategy!(
    S0 / v0,
    S1 / v1,
    S2 / v2,
    S3 / v3,
    S4 / v4,
    S5 / v5,
    S6 / v6,
    S7 / v7
);
