//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x this workspace uses: the
//! [`proptest!`] macro, `prop_assert*` macros, the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_filter`, integer-range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`] and
//! [`test_runner::ProptestConfig`]. Failing cases are reported with their
//! inputs but are **not shrunk**.
//!
//! Case counts: the `PROPTEST_CASES` environment variable, when set,
//! overrides every suite's configured count (CI pins a small value; local
//! deep runs can set thousands). Otherwise `ProptestConfig::with_cases`
//! or the default of 256 applies.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The acceptable sizes of a generated collection, mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`, with lengths in
    /// `size` (a `usize`, `a..b` or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

pub mod num {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.rng().gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.rng().gen_range(self.clone()))
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// block runs its body against many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                // Evaluate strategy expressions once, as real proptest does.
                let combined = ($(($strat),)+);
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cases {
                    let values = {
                        let mut attempt = 0u32;
                        loop {
                            match $crate::strategy::Strategy::sample(&combined, &mut rng) {
                                Some(v) => break v,
                                None => {
                                    attempt += 1;
                                    if attempt > config.max_local_rejects {
                                        panic!(
                                            "proptest {}: too many strategy rejections (case {})",
                                            stringify!($name), case
                                        );
                                    }
                                }
                            }
                        }
                    };
                    let debug_values = format!("{:?}", &values);
                    let ($($pat,)+) = values;
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, cases, msg, debug_values
                        ),
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` for property bodies: failure aborts only the current case,
/// reporting the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
