//! Test-runner configuration, case errors and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-suite configuration, mirroring `proptest::test_runner::Config`.
///
/// The `PROPTEST_CASES` environment variable, when set to a positive
/// integer, overrides `cases` for every suite — CI pins a small count,
/// local deep runs can pin thousands.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum consecutive filter rejections tolerated per case.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (subject to the `PROPTEST_CASES`
    /// environment override).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// The case count actually used: `PROPTEST_CASES` when set and valid,
    /// otherwise the configured count.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse::<u32>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (e.g. a failed `prop_assume!`).
    Reject(String),
    /// The property was falsified.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies. Seeded deterministically from the test
/// name so failures reproduce run-to-run without a persistence file.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name gives each property its own stream.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The underlying seedable generator (for range sampling).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
