//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand` 0.8 API this workspace uses:
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not
//! cryptographic, but fast, seedable and statistically fine for the
//! simulator's workload generation and for shuffles in tests.

/// The raw generator interface: a source of uniform `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive integer range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                start.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, matching the `rand::Rng` extension
/// trait. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: a small, fast, seedable generator. The real crate's
    /// `StdRng` is ChaCha-based; streams differ but determinism per seed —
    /// the only property the workspace relies on — is preserved.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, matching `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u32..=7);
            assert!((2..=7).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
