//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the bench suite uses — `criterion_group!` /
//! `criterion_main!`, [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`Throughput`] and [`black_box`] — with a minimal
//! measurement loop instead of criterion's statistical machinery: each
//! benchmark runs for roughly `measurement_time` and reports the mean
//! iteration time. When invoked by `cargo test` (libtest passes
//! `--test`), every benchmark executes exactly one iteration so test
//! runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`-style methods (`&str`,
/// `String` or a [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Units processed per iteration, used to annotate reported timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            // libtest invokes bench binaries with `--test`; `cargo bench`
            // passes `--bench`. Anything else is ignored.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn warm_up_time(self, _dur: Duration) -> Self {
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.into_benchmark_id().id;
        run_one(&name, None, self.measurement_time, self.test_mode, f);
        self
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.measurement_time = dur;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(
            &name,
            self.throughput,
            self.criterion.measurement_time,
            self.criterion.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Runs the measured routine and records iteration timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the configured
    /// measurement window (once in test mode).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    test_mode: bool,
    mut f: impl FnMut(&mut Bencher),
) {
    if test_mode {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Calibrate: run once to estimate cost, then size the batch to fill
    // the measurement window (capped to keep pathological cases bounded).
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iterations = (measurement_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / mean / 1e6)
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<60} time: {}{rate}", format_time(mean));
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:>10.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:>10.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:>10.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:>10.2} s ")
    }
}

/// Declares a group of benchmark functions with an optional shared
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
