//! Integration tests for the reporting layer: multi-step embedding chains,
//! the one-stop `EmbeddingMetrics` report, the closed-form network metrics,
//! and the text renderings — all cross-checked against the independent
//! verification sweep.

use embeddings::chain::EmbeddingChain;
use embeddings::metrics::EmbeddingMetrics;
use embeddings::paper_examples;
use embeddings::verify::verify;
use gridviz::render::{render_embedding, render_grid_indices};
use gridviz::table::{Alignment, Table};
use topology::metrics::GridMetrics;
use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn metrics_agree_with_the_verification_report_across_construction_families() {
    let cases: Vec<(Grid, Grid)> = vec![
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        (Grid::line(24).unwrap(), Grid::torus(shape(&[4, 2, 3]))),
        (
            Grid::torus(shape(&[4, 6])),
            Grid::mesh(shape(&[2, 2, 2, 3])),
        ),
        (Grid::mesh(shape(&[3, 3, 6])), Grid::mesh(shape(&[6, 9]))),
        (Grid::hypercube(6).unwrap(), Grid::torus(shape(&[8, 8]))),
        (Grid::mesh(shape(&[4, 4, 4])), Grid::mesh(shape(&[8, 8]))),
    ];
    for (guest, host) in cases {
        let embedding = embed(&guest, &host).unwrap();
        let metrics = EmbeddingMetrics::measure(&embedding).unwrap();
        let report = verify(&embedding, 0).unwrap();
        assert_eq!(metrics.injective, report.injective, "{guest} -> {host}");
        assert_eq!(metrics.dilation, report.dilation, "{guest} -> {host}");
        assert_eq!(metrics.guest_edges, report.edges, "{guest} -> {host}");
        assert!(
            (metrics.average_dilation - report.average_dilation).abs() < 1e-9,
            "{guest} -> {host}"
        );
        assert!(metrics.meets_prediction(), "{guest} -> {host}");
        // Congestion is at least the worst per-edge stretch divided by ... at
        // minimum it is 1 whenever there is at least one edge.
        assert!(metrics.congestion.max_congestion >= 1);
    }
}

#[test]
fn paper_example_chain_reports_every_intermediate_step() {
    // The Theorem 51 flavour of chain: square mesh, dimension not divisible,
    // expressed explicitly as a chain through the intermediate shape the
    // paper constructs ((4,4,4) -> (8,8) is one general-reduction step, so we
    // build a longer chain through a 6-dimensional hypercube-shaped mesh to
    // exercise several steps).
    let guest = Grid::mesh(shape(&[2, 2, 2, 2, 2, 2]));
    let mid_a = Grid::mesh(shape(&[4, 4, 4]));
    let mid_b = Grid::mesh(shape(&[8, 8]));
    let host = Grid::line(64).unwrap();
    let chain = EmbeddingChain::through(&guest, &[mid_a, mid_b], &host).unwrap();
    assert_eq!(chain.len(), 3);

    let report = chain.report();
    assert_eq!(report.steps.len(), 3);
    assert!(report.steps.iter().all(|step| step.dilation >= 1));
    assert_eq!(report.product_bound, chain.dilation_product_bound());
    assert!(report.within_bound());

    let composed = chain.compose().unwrap();
    let verified = verify(&composed, 0).unwrap();
    assert!(verified.injective);
    assert_eq!(verified.dilation, composed.dilation());
    assert_eq!(report.composed_dilation, composed.dilation());
    assert!(composed.dilation() <= chain.dilation_product_bound());

    // The direct planner result for the same endpoints cannot be worse than
    // the explicit chain's product bound.
    let direct = embed(&guest, &host).unwrap();
    assert!(direct.dilation() <= chain.dilation_product_bound());
}

#[test]
fn figure12_metrics_lower_bound_and_rendering_are_consistent() {
    let (guest, host) = paper_examples::fig12_grids();
    let embedding = embed(&guest, &host).unwrap();
    let metrics = EmbeddingMetrics::measure(&embedding).unwrap();
    assert_eq!(metrics.dilation, 3);
    assert_eq!(metrics.predicted_dilation, Some(3));
    if let Some(bound) = metrics.lower_bound {
        assert!(bound <= metrics.dilation);
    }

    let picture = render_embedding(&embedding).unwrap();
    // Every guest node index appears exactly once in the picture.
    let labels: Vec<u64> = picture
        .split_whitespace()
        .filter_map(|token| token.parse().ok())
        .collect();
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..guest.size()).collect::<Vec<u64>>());
}

#[test]
fn grid_metrics_closed_forms_hold_for_the_papers_graphs() {
    let torus = paper_examples::fig1_torus();
    let mesh = paper_examples::fig2_mesh();
    let torus_metrics = GridMetrics::measure(&torus);
    let mesh_metrics = GridMetrics::measure(&mesh);
    assert_eq!(torus_metrics.nodes, 24);
    assert_eq!(mesh_metrics.nodes, 24);
    assert_eq!(torus_metrics.edges, 24 + 12 + 24);
    assert!(mesh_metrics.edges < torus_metrics.edges);
    assert_eq!(torus_metrics.diameter, 4);
    assert_eq!(mesh_metrics.diameter, 3 + 1 + 2);
    assert!(torus_metrics.mean_distance < mesh_metrics.mean_distance);
    assert!(torus_metrics.bisection_width >= mesh_metrics.bisection_width);
}

#[test]
fn tables_render_the_experiment_rows_they_are_given() {
    // The gridviz table is what the examples and the repro harness print;
    // make sure a realistic experiment table round-trips through all three
    // output formats without losing rows.
    let mut table =
        Table::new(vec!["guest", "host", "predicted", "measured"]).with_alignments(vec![
            Alignment::Left,
            Alignment::Left,
            Alignment::Right,
            Alignment::Right,
        ]);
    let cases: Vec<(Grid, Grid)> = vec![
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        (Grid::mesh(shape(&[8, 8])), Grid::line(64).unwrap()),
        (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
    ];
    for (guest, host) in &cases {
        let predicted = predicted_dilation(guest, host).unwrap();
        let measured = embed(guest, host).unwrap().dilation();
        assert!(measured <= predicted);
        table.push_row(vec![
            guest.to_string(),
            host.to_string(),
            predicted.to_string(),
            measured.to_string(),
        ]);
    }
    assert_eq!(table.len(), cases.len());
    let text = table.to_text();
    let markdown = table.to_markdown();
    let csv = table.to_csv();
    for output in [&text, &markdown, &csv] {
        assert_eq!(
            output.lines().count(),
            cases.len() + 2 - usize::from(output == &csv)
        );
        assert!(output.contains("ring(24)") || output.contains("(24)"));
    }

    // The index legend for the paper's mesh shows all 24 node indices.
    let legend = render_grid_indices(&paper_examples::fig2_mesh());
    for x in 0..24 {
        assert!(legend.split_whitespace().any(|t| t == x.to_string()));
    }
}
