//! Failure injection across the public API: invalid shapes, mismatched
//! sizes, unsupported pairs, oversized requests and broken custom mappings
//! must surface as typed errors (or documented panics), never as wrong
//! answers.

use std::sync::Arc;

use embeddings::error::EmbeddingError;
use embeddings::exhaustive::optimal_dilation_exhaustive;
use embeddings::verify::verify;
use topology::TopologyError;
use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn invalid_shapes_are_rejected_at_construction() {
    // The paper requires every dimension length to be greater than 1
    // (Definition 2), and a shape must have at least one dimension.
    assert!(Shape::new(vec![]).is_err());
    assert!(Shape::new(vec![1]).is_err());
    assert!(Shape::new(vec![4, 1, 3]).is_err());
    assert!(Shape::new(vec![0, 2]).is_err());
    // Degenerate rings and lines are rejected too.
    assert!(matches!(
        Grid::ring(1).unwrap_err(),
        TopologyError::GraphTooSmall { .. } | TopologyError::Radix(_)
    ));
    assert!(Grid::line(0).is_err());
    // A hypercube needs at least one dimension and at most MAX_DIM.
    assert!(Grid::hypercube(0).is_err());
    assert!(Grid::hypercube(1000).is_err());
}

#[test]
fn size_mismatches_are_reported_with_both_sizes() {
    let guest = Grid::ring(24).unwrap();
    let host = Grid::mesh(shape(&[5, 5]));
    match embed(&guest, &host) {
        Err(EmbeddingError::SizeMismatch { guest, host }) => {
            assert_eq!(guest, 24);
            assert_eq!(host, 25);
        }
        other => panic!("expected SizeMismatch, got {other:?}"),
    }
    assert!(predicted_dilation(&guest, &host).is_err());
}

#[test]
fn pairs_outside_the_papers_cases_are_unsupported_not_wrong() {
    // Equal dimension, same size, but the shapes are not a permutation of
    // each other: the paper has no construction for this pair.
    let guest = Grid::mesh(shape(&[4, 9]));
    let host = Grid::mesh(shape(&[6, 6]));
    assert!(matches!(
        embed(&guest, &host),
        Err(EmbeddingError::Unsupported { .. })
    ));

    // Increasing dimension without expansion, non-square: also open.
    let guest = Grid::mesh(shape(&[6, 6]));
    let host = Grid::mesh(shape(&[4, 3, 3]));
    assert!(matches!(
        embed(&guest, &host),
        Err(EmbeddingError::Unsupported { .. })
    ));
}

#[test]
fn oversized_requests_fail_with_too_large_not_oom() {
    // A 2^32-node host cannot be materialized as a table.
    let guest = Grid::hypercube(32).unwrap();
    let host = Grid::hypercube(32).unwrap();
    let embedding = embed(&guest, &host).unwrap();
    assert!(matches!(
        embedding.to_table(),
        Err(EmbeddingError::TooLarge { .. })
    ));
    // ... and the exhaustive optimal search refuses anything non-tiny.
    let big_guest = Grid::mesh(shape(&[8, 8]));
    let big_host = Grid::line(64).unwrap();
    assert!(matches!(
        optimal_dilation_exhaustive(&big_guest, &big_host, None),
        Err(EmbeddingError::TooLarge { .. })
    ));
}

#[test]
fn broken_custom_mappings_are_flagged_by_verification() {
    // A constant map is not injective; verify must say so rather than
    // reporting a flattering dilation.
    let line = Grid::line(6).unwrap();
    let host = Grid::line(6).unwrap();
    let broken = Embedding::new(
        line,
        host,
        "constant",
        Arc::new(|_| Coord::from_slice(&[0]).unwrap()),
    )
    .unwrap();
    let report = verify(&broken, 0).unwrap();
    assert!(!report.injective);
}

#[test]
fn chain_and_render_propagate_upstream_errors() {
    use embeddings::chain::EmbeddingChain;
    use gridviz::render::render_embedding;

    // A chain through a waypoint of the wrong size fails on that leg.
    let guest = Grid::ring(16).unwrap();
    let waypoint = Grid::mesh(shape(&[3, 5]));
    let host = Grid::mesh(shape(&[4, 4]));
    assert!(EmbeddingChain::through(&guest, &[waypoint], &host).is_err());

    // Rendering a non-injective mapping is refused.
    let broken = Embedding::new(
        Grid::line(4).unwrap(),
        Grid::line(4).unwrap(),
        "constant",
        Arc::new(|_| Coord::from_slice(&[0]).unwrap()),
    )
    .unwrap();
    assert!(render_embedding(&broken).is_err());
}

#[test]
fn error_messages_are_human_readable() {
    let guest = Grid::ring(24).unwrap();
    let host = Grid::mesh(shape(&[5, 5]));
    let message = embed(&guest, &host).unwrap_err().to_string();
    assert!(message.contains("24"));
    assert!(message.contains("25"));

    let message = Shape::new(vec![4, 1, 3]).unwrap_err().to_string();
    assert!(!message.is_empty());
}
