//! Cross-crate sweeps over the paper's theorems: for families of shapes,
//! check that the planner produces injective embeddings whose measured
//! dilation equals (or is bounded by) the theorem's guarantee.

use torus_mesh_embeddings::prelude::*;

use embeddings::lower_bound::dilation_lower_bound;
use embeddings::verify::verify;
use topology::GraphKind;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

fn grids_of(radices: &[u32]) -> [Grid; 2] {
    [Grid::torus(shape(radices)), Grid::mesh(shape(radices))]
}

/// Checks planner output against its prediction and returns the measured
/// dilation.
fn check(guest: &Grid, host: &Grid) -> u64 {
    let predicted = predicted_dilation(guest, host)
        .unwrap_or_else(|e| panic!("prediction failed for {guest} -> {host}: {e}"));
    let embedding =
        embed(guest, host).unwrap_or_else(|e| panic!("embed failed for {guest} -> {host}: {e}"));
    let report = verify(&embedding, 0).unwrap();
    assert!(report.injective, "not injective: {guest} -> {host}");
    assert!(
        report.dilation <= predicted,
        "dilation {} exceeds prediction {predicted} for {guest} -> {host} ({})",
        report.dilation,
        embedding.name()
    );
    report.dilation
}

#[test]
fn basic_embedding_sweep() {
    // Lines and rings into every small host shape.
    let host_shapes: Vec<Vec<u32>> = vec![
        vec![6],
        vec![7],
        vec![3, 3],
        vec![4, 3],
        vec![2, 2, 2],
        vec![4, 2, 3],
        vec![3, 3, 3],
        vec![5, 4],
        vec![2, 9],
        vec![3, 2, 2, 2],
    ];
    for radices in &host_shapes {
        for host in grids_of(radices) {
            let n = host.size();
            let line_dilation = check(&Grid::line(n).unwrap(), &host);
            assert_eq!(line_dilation, 1, "line into {host}");

            let ring_dilation = check(&Grid::ring(n).unwrap(), &host);
            let expected = if host.is_torus() || (host.dim() >= 2 && n % 2 == 0) {
                1
            } else {
                2
            };
            assert_eq!(ring_dilation, expected, "ring into {host}");
        }
    }
}

#[test]
fn increasing_dimension_sweep() {
    // (guest radices, host radices, expected dilation for mesh guest,
    // expected dilation for torus guest into a mesh host).
    let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![4, 6], vec![2, 2, 2, 3]),
        (vec![8, 9], vec![2, 4, 3, 3]),
        (vec![6, 6], vec![2, 3, 2, 3]),
        (vec![12, 2], vec![3, 4, 2]),
        (vec![9, 9], vec![3, 3, 3, 3]),
        (vec![16], vec![4, 4]),
        (vec![4, 4, 4], vec![2, 2, 2, 2, 2, 2]),
    ];
    for (guest_radices, host_radices) in cases {
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, shape(&guest_radices));
                let host = Grid::new(host_kind, shape(&host_radices));
                let dilation = check(&guest, &host);
                // Theorem 32: unit dilation except possibly torus -> mesh.
                if guest.is_mesh() || host.is_torus() {
                    assert_eq!(dilation, 1, "{guest} -> {host}");
                } else {
                    assert!(dilation <= 2, "{guest} -> {host}");
                    if guest.size() % 2 == 1 {
                        assert_eq!(dilation, 2, "odd torus {guest} -> {host}");
                    }
                }
            }
        }
    }
}

#[test]
fn lowering_dimension_sweep() {
    let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
        (vec![4, 2, 3], vec![4, 6]),
        (vec![2, 2, 2, 2], vec![4, 4]),
        (vec![3, 3, 3], vec![9, 3]),
        (vec![2, 3, 2, 3], vec![6, 6]),
        (vec![4, 4, 4], vec![16, 4]),
        (vec![3, 3, 6], vec![6, 9]),
        (vec![5, 5, 4], vec![10, 10]),
        (vec![2, 2, 2, 2, 2], vec![4, 8]),
    ];
    for (guest_radices, host_radices) in cases {
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, shape(&guest_radices));
                let host = Grid::new(host_kind, shape(&host_radices));
                let dilation = check(&guest, &host);
                // The Theorem 47 lower bound must hold for whatever we built.
                let bound = dilation_lower_bound(&guest, &host).unwrap();
                assert!(
                    bound <= dilation,
                    "lower bound {bound} exceeds measured dilation {dilation} for {guest} -> {host}"
                );
            }
        }
    }
}

#[test]
fn square_graph_sweep() {
    // (ℓ, d, c) triples with ℓ^d = side^c for some integer side.
    let cases: Vec<(u32, usize, usize)> = vec![
        (4, 2, 1),
        (2, 4, 2),
        (4, 3, 2),
        (2, 6, 3),
        (8, 2, 3),
        (4, 2, 4),
        (9, 2, 4),
        (3, 4, 2),
        (64, 2, 3),
    ];
    for (ell, d, c) in cases {
        let guest_shape = Shape::square(ell, d).unwrap();
        let size = guest_shape.size();
        let side = (size as f64).powf(1.0 / c as f64).round() as u32;
        assert_eq!((side as u64).pow(c as u32), size, "test case is consistent");
        let host_shape = Shape::square(side, c).unwrap();
        for guest_kind in [GraphKind::Mesh, GraphKind::Torus] {
            for host_kind in [GraphKind::Mesh, GraphKind::Torus] {
                let guest = Grid::new(guest_kind, guest_shape.clone());
                let host = Grid::new(host_kind, host_shape.clone());
                check(&guest, &host);
            }
        }
    }
}

#[test]
fn hamiltonian_corollaries_from_ring_embeddings() {
    use topology::hamiltonian::{admits_hamiltonian_circuit, is_hamiltonian_circuit};
    let shapes: Vec<Vec<u32>> = vec![
        vec![3, 3],
        vec![4, 3],
        vec![2, 2, 3],
        vec![5, 5],
        vec![4, 2, 3],
        vec![3, 3, 3],
    ];
    for radices in shapes {
        for grid in grids_of(&radices) {
            let expected = admits_hamiltonian_circuit(&grid);
            let ring = Grid::ring(grid.size()).unwrap();
            let embedding = embed(&ring, &grid).unwrap();
            let circuit: Vec<u64> = (0..grid.size()).map(|x| embedding.map_index(x)).collect();
            let is_circuit = is_hamiltonian_circuit(&grid, &circuit);
            // A unit-dilation ring embedding is exactly a Hamiltonian circuit.
            assert_eq!(embedding.dilation() == 1, is_circuit);
            assert_eq!(
                is_circuit,
                expected,
                "Hamiltonicity mismatch for {grid} (dilation {})",
                embedding.dilation()
            );
        }
    }
}

/// Pins the paper's running example `L = (4, 2, 3)` to exact values:
/// the δ_m/δ_t distances of Lemmas 5–6 and the unit-dilation ring-in-mesh
/// embedding of Theorem 24. These are hard-coded regressions — if a
/// refactor changes any of these numbers it has broken the paper's math,
/// not the test.
#[test]
fn running_example_4_2_3_pins_lemmas_5_6_and_theorem_24() {
    use mixedradix::distance::{delta_m_index, delta_t_index, mesh_diameter, torus_diameter};
    use mixedradix::{Digits, RadixBase};
    use topology::bfs::bfs;

    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    assert_eq!(base.size(), 24);

    // Lemmas 5–6: hand-computed distances for concrete digit pairs.
    // Each entry is (a, b, δ_m, δ_t) with δ_m = Σ|a_k − b_k| and
    // δ_t = Σ min{|a_k − b_k|, l_k − |a_k − b_k|}.
    let pinned: [(&[u32], &[u32], u64, u64); 4] = [
        // Opposite corners: mesh walks the full diameter, the torus
        // wraps every dimension it can.
        (&[0, 0, 0], &[3, 1, 2], 6, 3),
        // Differ in the first (wrappable) dimension only.
        (&[0, 0, 0], &[3, 0, 0], 3, 1),
        // Mixed pair where wrapping never strictly helps (dimension 0
        // ties: min{2, 4−2} = 2), so δ_t = δ_m.
        (&[1, 1, 2], &[3, 0, 1], 4, 4),
        // Adjacent nodes agree under both metrics.
        (&[2, 1, 0], &[2, 1, 1], 1, 1),
    ];
    let torus = Grid::torus(shape(&[4, 2, 3]));
    let mesh = Grid::mesh(shape(&[4, 2, 3]));
    for (a, b, dm, dt) in pinned {
        let x = base.to_index(&Digits::from_slice(a).unwrap()).unwrap();
        let y = base.to_index(&Digits::from_slice(b).unwrap()).unwrap();
        assert_eq!(delta_m_index(&base, x, y).unwrap(), dm, "δ_m({a:?}, {b:?})");
        assert_eq!(delta_t_index(&base, x, y).unwrap(), dt, "δ_t({a:?}, {b:?})");
        // The lemmas' real content: δ_m/δ_t *are* the graph distances in
        // the (4,2,3)-mesh and (4,2,3)-torus.
        assert_eq!(bfs(&mesh, x).unwrap().distance(y).unwrap(), dm);
        assert_eq!(bfs(&torus, x).unwrap().distance(y).unwrap(), dt);
    }

    // The diameters those distances imply: Σ(l_k − 1) and Σ⌊l_k/2⌋.
    assert_eq!(mesh_diameter(&base), 6);
    assert_eq!(torus_diameter(&base), 4);

    // Theorem 24: the 24-ring embeds in the (4,2,3)-mesh with dilation
    // exactly 1, i.e. the image walk is a Hamiltonian circuit.
    let ring = Grid::ring(24).unwrap();
    let plan = embed(&ring, &mesh).unwrap();
    let report = verify(&plan, 0).unwrap();
    assert!(report.injective);
    assert_eq!(
        report.dilation, 1,
        "Theorem 24: ring in (4,2,3)-mesh is unit-dilation"
    );
    assert_eq!(plan.dilation(), 1);
}

#[test]
fn facade_prelude_covers_the_whole_pipeline() {
    // One end-to-end flow through the facade crate: build graphs, embed,
    // verify, simulate.
    let guest = Grid::torus(Shape::new(vec![4, 4]).unwrap());
    let host = Grid::mesh(Shape::new(vec![2, 2, 2, 2]).unwrap());
    let embedding = embed(&guest, &host).unwrap();
    assert_eq!(embedding.dilation(), 1);

    let stats = simulate_embedding(&embedding, 2);
    assert_eq!(stats.max_hops, 1);
    assert_eq!(stats.messages, 2 * 2 * guest.num_edges());
}
