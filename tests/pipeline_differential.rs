//! Differential suite for the batched evaluation pipeline.
//!
//! The parallel sweeps must be bit-identical to their sequential references
//! on irregular shapes, and the congestion model must agree hop-for-hop with
//! the `netsim` simulator — both are built on the same shared
//! `topology::routing` next-hop rule, and this suite is the fence that keeps
//! them from desynchronizing.

use embeddings::auto::embed;
use embeddings::basic::{embed_line_in, embed_ring_in};
use embeddings::congestion::{congestion_parallel, congestion_sequential};
use embeddings::verify::{verify, verify_sequential};
use embeddings::Embedding;
use netsim::prelude::{Network, Router, RoutingAlgorithm};
use topology::routing::next_hop_toward;
use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

/// The irregular differential-test shapes named in the issue, as
/// guest/host pairs with nontrivial embeddings.
fn fixtures() -> Vec<Embedding> {
    let mut embeddings = Vec::new();
    for host in [
        Grid::torus(shape(&[4, 2, 3])),
        Grid::mesh(shape(&[4, 2, 3])),
        Grid::torus(shape(&[5, 3])),
        Grid::mesh(shape(&[5, 3])),
        Grid::hypercube(4).unwrap(),
        // Ragged shapes: sizes that are not multiples of the SoA batch
        // width, so the digit-plane sweeps hit a short final batch.
        Grid::torus(shape(&[5, 3, 7])),
        Grid::mesh(shape(&[5, 3, 7])),
        Grid::ring(67).unwrap(),
        Grid::line(67).unwrap(),
    ] {
        embeddings.push(embed_line_in(&host).unwrap());
        embeddings.push(embed_ring_in(&host).unwrap());
    }
    embeddings.push(
        embed(
            &Grid::torus(shape(&[4, 2, 3])),
            &Grid::mesh(shape(&[4, 2, 3])),
        )
        .unwrap(),
    );
    embeddings.push(embed(&Grid::mesh(shape(&[5, 3])), &Grid::torus(shape(&[5, 3]))).unwrap());
    embeddings.push(embed(&Grid::hypercube(4).unwrap(), &Grid::mesh(shape(&[4, 4]))).unwrap());
    embeddings
}

#[test]
fn parallel_verify_equals_sequential_verify() {
    for embedding in fixtures() {
        let sequential = verify_sequential(&embedding);
        for threads in [1, 2, 3, 8, 0] {
            let parallel = verify(&embedding, threads).unwrap();
            assert_eq!(
                parallel, sequential,
                "verify threads={threads} {embedding:?}"
            );
        }
    }
}

#[test]
fn parallel_congestion_equals_sequential_congestion() {
    for embedding in fixtures() {
        let sequential = congestion_sequential(&embedding).unwrap();
        for threads in [1, 2, 3, 8, 0] {
            let parallel = congestion_parallel(&embedding, threads).unwrap();
            assert_eq!(
                parallel, sequential,
                "congestion threads={threads} {embedding:?}"
            );
        }
    }
}

#[test]
fn congestion_path_lengths_equal_netsim_dor_hop_counts() {
    // Cross-crate: for every embedding, the congestion model's total routed
    // path length must equal the sum of the simulator's dimension-ordered
    // hop counts over the same guest edges — both crates route with the
    // shared next-hop primitive.
    for embedding in fixtures() {
        let report = congestion_sequential(&embedding).unwrap();
        let network = Network::new(embedding.host().clone());
        let router = Router::new(&network, RoutingAlgorithm::DimensionOrdered);
        let mut simulated_total = 0u64;
        let mut simulated_edges = 0u64;
        let mut route = Vec::new();
        for (a, b) in embedding.guest().edges() {
            let (from, to) = (embedding.map_index(a), embedding.map_index(b));
            route.clear();
            router.route_into(&network, from, to, &mut route);
            assert_eq!(
                route.len() as u64,
                router.hops(&network, from, to),
                "route/hops mismatch for guest edge ({a},{b})"
            );
            simulated_total += route.len() as u64;
            simulated_edges += 1;
        }
        assert_eq!(report.guest_edges, simulated_edges, "{embedding:?}");
        assert_eq!(report.total_path_length, simulated_total, "{embedding:?}");
    }
}

#[test]
fn even_radix_tie_break_is_identical_in_both_crates() {
    // Equidistant arcs on even-radius toruses must pick the forward arc in
    // the shared rule, in netsim's Network, and in netsim's Router alike.
    for radices in [&[4][..], &[6, 6][..], &[2, 4][..]] {
        let grid = Grid::torus(shape(radices));
        let network = Network::new(grid.clone());
        let router = Router::new(&network, RoutingAlgorithm::DimensionOrdered);
        let dims: Vec<usize> = (0..grid.dim()).collect();
        for from in grid.nodes() {
            for to in grid.nodes() {
                let a = grid.coord(from).unwrap();
                let b = grid.coord(to).unwrap();
                let shared = next_hop_toward(&grid, &a, &b, &dims).map(|c| grid.index(&c).unwrap());
                assert_eq!(network.next_hop(from, to), shared, "{grid} {from}->{to}");
                let route = router.route(&network, from, to);
                assert_eq!(route.first().copied(), shared, "{grid} {from}->{to}");
            }
        }
        // Spot-check the tie itself: antipodal pairs step forward.
        let antipode = grid.shape().radix(0) as u64 / 2 * grid.shape().weight(1);
        let first_hop = network.next_hop(0, antipode).unwrap();
        assert_eq!(
            first_hop,
            grid.shape().weight(1),
            "forward arc from 0 in {grid}"
        );
    }
}

#[test]
fn batched_edge_sweep_matches_per_call_measurements() {
    // The batched pipeline and naive per-call arithmetic must agree on
    // every aggregate, not just dilation.
    for embedding in fixtures() {
        let report = verify_sequential(&embedding);
        let host = embedding.host();
        let mut edges = 0u64;
        let mut dilation = 0u64;
        let mut total = 0u64;
        for (a, b) in embedding.guest().edges() {
            let d = host.distance(&embedding.map(a), &embedding.map(b));
            edges += 1;
            total += d;
            dilation = dilation.max(d);
        }
        assert_eq!(report.edges, edges);
        assert_eq!(report.dilation, dilation);
        assert_eq!(report.histogram.values().sum::<u64>(), edges);
        assert!((report.average_dilation - total as f64 / edges as f64).abs() < 1e-12);
        assert!(report.injective);
        assert_eq!(report.invalid_images, 0);
    }
}
