//! Integration checks for the congestion extension: congestion measured by
//! the embeddings crate must be consistent with the traffic the netsim
//! simulator actually routes.

use torus_mesh_embeddings::prelude::*;

use embeddings::congestion::congestion;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn hamiltonian_placements_have_unit_congestion_and_unit_hops() {
    for host in [
        Grid::mesh(shape(&[4, 6])),
        Grid::torus(shape(&[5, 5])),
        Grid::hypercube(5).unwrap(),
    ] {
        let ring = Grid::ring(host.size()).unwrap();
        let embedding = embed(&ring, &host).unwrap();
        assert_eq!(embedding.dilation(), 1);

        let report = congestion(&embedding).unwrap();
        assert_eq!(report.max_congestion, 1, "host {host}");

        let stats = simulate_embedding(&embedding, 1);
        assert_eq!(stats.max_hops, 1);
        // With unit congestion in each direction, the store-and-forward
        // schedule drains a full round in a single cycle.
        assert_eq!(stats.cycles, 1, "host {host}");
    }
}

#[test]
fn congestion_total_path_length_matches_simulated_hops() {
    let cases = vec![
        (Grid::torus(shape(&[4, 4])), Grid::mesh(shape(&[4, 4]))),
        (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
        (Grid::mesh(shape(&[4, 4])), Grid::line(16).unwrap()),
    ];
    for (guest, host) in cases {
        let embedding = embed(&guest, &host).unwrap();
        let report = congestion(&embedding).unwrap();
        // One message per guest edge per direction: the simulator's hop count
        // is exactly twice the one-directional routed path length.
        let stats = simulate_embedding(&embedding, 1);
        assert_eq!(
            stats.total_hops,
            2 * report.total_path_length,
            "{guest} -> {host}"
        );
        assert!(report.max_congestion >= 1);
        // The schedule can never drain faster than the busiest link.
        assert!(stats.cycles >= report.max_congestion, "{guest} -> {host}");
    }
}

#[test]
fn lowering_dimension_increases_congestion_monotonically_with_guest_dim() {
    // Collapsing higher-dimensional meshes onto a line funnels more and more
    // traffic through the middle link.
    let line_hosts = [Grid::mesh(shape(&[4, 4])), Grid::mesh(shape(&[4, 4, 4]))];
    let mut previous = 0;
    for guest in line_hosts {
        let host = Grid::line(guest.size()).unwrap();
        let embedding = embed(&guest, &host).unwrap();
        let report = congestion(&embedding).unwrap();
        assert!(
            report.max_congestion > previous,
            "congestion should grow with guest dimension"
        );
        previous = report.max_congestion;
    }
}
