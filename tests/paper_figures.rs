//! Cross-crate integration tests that pin down the worked figures of the
//! paper (Figures 1–4 and 9–12).

use torus_mesh_embeddings::prelude::*;

use embeddings::basic::{f_l, g_l, h_l};
use embeddings::general_reduction::find_general_reduction;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn figures_1_and_2_topologies() {
    // Figure 1: a (4,2,3)-torus; Figure 2: a (4,2,3)-mesh.
    let torus = Grid::torus(shape(&[4, 2, 3]));
    let mesh = Grid::mesh(shape(&[4, 2, 3]));
    assert_eq!(torus.size(), 24);
    assert_eq!(mesh.size(), 24);
    // Every torus node has 2 neighbors per dimension of length > 2 and 1 per
    // dimension of length 2.
    assert!(torus.nodes().all(|x| torus.degree(x).unwrap() == 5));
    // The quoted distances between (0,0,1) and (3,0,0).
    let a = Coord::from_slice(&[0, 0, 1]).unwrap();
    let b = Coord::from_slice(&[3, 0, 0]).unwrap();
    assert_eq!(torus.distance(&a, &b), 2);
    assert_eq!(mesh.distance(&a, &b), 4);
}

#[test]
fn figure_4_sequences_p_and_p_prime() {
    // The natural sequence P has δ_m-spread > 1 for L = (4,2,3); the
    // reflected sequence P' = f_L has unit spread.
    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    let natural = NaturalSequence::new(base.clone());
    assert!(natural.acyclic_spread_mesh() > 1);

    let inner = base.clone();
    let reflected = FnSequence::new(base.clone(), 24, move |x| f_l(&inner, x));
    assert!(reflected.is_bijection());
    assert_eq!(reflected.acyclic_spread_mesh(), 1);
}

#[test]
fn figure_9_tables_for_l_4_2_3() {
    // Figure 9 tabulates f_L, g_L and h_L for n = 24, L = (4,2,3). We pin the
    // structural facts the figure shows: all three are bijections; f has unit
    // acyclic spread; g has cyclic mesh spread 2; h has cyclic mesh spread 1.
    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    let n = base.size();

    let fb = base.clone();
    let f = FnSequence::new(base.clone(), n, move |x| f_l(&fb, x));
    let gb = base.clone();
    let g = FnSequence::new(base.clone(), n, move |x| g_l(&gb, x));
    let hb = base.clone();
    let h = FnSequence::new(base.clone(), n, move |x| h_l(&hb, x));

    assert!(f.is_bijection() && g.is_bijection() && h.is_bijection());
    assert_eq!(f.acyclic_spread_mesh(), 1);
    assert_eq!(g.cyclic_spread_mesh(), 2);
    assert_eq!(h.cyclic_spread_mesh(), 1);
    assert_eq!(h.cyclic_spread_torus(), 1);

    // Specific rows quoted or implied by the construction.
    assert_eq!(f_l(&base, 0).as_slice(), &[0, 0, 0]);
    assert_eq!(f_l(&base, 23).as_slice(), &[3, 0, 0]);
    assert_eq!(g_l(&base, 0).as_slice(), &[0, 0, 0]);
    assert_eq!(h_l(&base, 0).as_slice(), &[3, 0, 0]);
    assert_eq!(h_l(&base, 23).as_slice(), &[3, 1, 0]);
}

#[test]
fn figure_10_embeddings_of_line_and_ring_in_4_2_3_mesh() {
    let mesh = Grid::mesh(shape(&[4, 2, 3]));

    // (d) embedding the line with f: dilation 1.
    let line = embed(&Grid::line(24).unwrap(), &mesh).unwrap();
    assert_eq!(line.dilation(), 1);

    // (e) embedding the ring with g would give dilation 2; (f) embedding the
    // ring with h gives dilation 1 — the planner picks the h-based
    // construction because the mesh has even size.
    let ring = embed(&Grid::ring(24).unwrap(), &mesh).unwrap();
    assert_eq!(ring.dilation(), 1);

    // The g-based embedding is still available explicitly and has dilation 2.
    let base = RadixBase::new(vec![4, 2, 3]).unwrap();
    let g_images: Vec<u64> = (0..24)
        .map(|x| mesh.index(&g_l(&base, x)).unwrap())
        .collect();
    let mut worst = 0;
    for x in 0..24u64 {
        let a = g_images[x as usize];
        let b = g_images[((x + 1) % 24) as usize];
        worst = worst.max(mesh.distance_index(a, b).unwrap());
    }
    assert_eq!(worst, 2);
}

#[test]
fn figure_11_expansion_functions_for_l_4_6() {
    // L = (4,6), M = (2,2,2,3), V = ((2,2),(2,3)).
    let guest_mesh = Grid::mesh(shape(&[4, 6]));
    let guest_torus = Grid::torus(shape(&[4, 6]));
    let host_mesh = Grid::mesh(shape(&[2, 2, 2, 3]));
    let host_torus = Grid::torus(shape(&[2, 2, 2, 3]));

    assert_eq!(embed(&guest_mesh, &host_mesh).unwrap().dilation(), 1);
    assert_eq!(embed(&guest_mesh, &host_torus).unwrap().dilation(), 1);
    assert_eq!(embed(&guest_torus, &host_torus).unwrap().dilation(), 1);
    // (4,6) has even size and admits an even-first factor, so even the
    // torus-into-mesh case reaches dilation 1.
    assert_eq!(embed(&guest_torus, &host_mesh).unwrap().dilation(), 1);
}

#[test]
fn figure_12_supernode_reduction_3_3_6_into_6_9() {
    let guest = Grid::mesh(shape(&[3, 3, 6]));
    let host = Grid::mesh(shape(&[6, 9]));

    // The supernode witness exists and carries the factors (3,2).
    let reduction = find_general_reduction(guest.shape(), host.shape()).unwrap();
    let mut factors = reduction.s_flat();
    factors.sort_unstable();
    assert_eq!(factors, vec![2, 3]);

    // The planner embeds the pair with dilation 3 (it may pick the simple
    // reduction, which achieves the same cost on this instance).
    let embedding = embed(&guest, &host).unwrap();
    assert!(embedding.is_injective());
    assert_eq!(embedding.dilation(), 3);
    assert_eq!(predicted_dilation(&guest, &host).unwrap(), 3);

    // The general-reduction construction itself also achieves 3.
    let general = embeddings::general_reduction::embed_general_reduction(&guest, &host).unwrap();
    assert_eq!(general.dilation(), 3);
}
