//! Cross-crate integration of embeddings with the routing simulator's
//! traffic patterns and routing algorithms: the dilation guarantees of the
//! paper must show up as hop-count guarantees for neighbor-exchange traffic,
//! and the permutation patterns must behave sensibly under every placement
//! and routing discipline.

use netsim::patterns;
use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn neighbor_exchange_max_hops_equals_dilation_for_every_construction_family() {
    // One representative per construction family of the paper.
    let cases: Vec<(Grid, Grid)> = vec![
        // basic: ring → mesh (h_L), line host handled elsewhere
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        // increasing dimension: mesh → mesh expansion (F_V)
        (Grid::mesh(shape(&[4, 6])), Grid::mesh(shape(&[2, 2, 2, 3]))),
        // increasing dimension: torus → torus (H_V)
        (
            Grid::torus(shape(&[4, 6])),
            Grid::torus(shape(&[2, 2, 2, 3])),
        ),
        // same shape: torus → mesh (T_L)
        (Grid::torus(shape(&[4, 4])), Grid::mesh(shape(&[4, 4]))),
        // simple reduction: hypercube → mesh (U_V)
        (Grid::hypercube(6).unwrap(), Grid::mesh(shape(&[8, 8]))),
        // general reduction: (3,3,6)-mesh → (6,9)-mesh
        (Grid::mesh(shape(&[3, 3, 6])), Grid::mesh(shape(&[6, 9]))),
        // square lowering: (4,4,4)-mesh → (8,8)-mesh
        (Grid::mesh(shape(&[4, 4, 4])), Grid::mesh(shape(&[8, 8]))),
    ];
    for (guest, host) in cases {
        let embedding = embed(&guest, &host).unwrap();
        let dilation = embedding.dilation();
        let stats = simulate_embedding(&embedding, 1);
        assert_eq!(
            stats.max_hops, dilation,
            "max routed hops must equal the dilation for {guest} -> {host}"
        );
        assert_eq!(stats.messages, 2 * guest.num_edges());
    }
}

#[test]
fn permutation_patterns_deliver_everything_under_every_routing_algorithm() {
    let network = Network::new(Grid::torus(shape(&[4, 4])));
    let placement = Placement::identity(16);
    let workloads = vec![
        patterns::transpose(4, 4),
        patterns::bit_reversal(4),
        patterns::bit_complement(4),
        patterns::shuffle(4),
        patterns::tornado(16),
        patterns::all_to_all(16),
        patterns::broadcast(16, 5),
        patterns::hotspot(16, 3, 2),
    ];
    for workload in &workloads {
        for algorithm in [
            RoutingAlgorithm::DimensionOrdered,
            RoutingAlgorithm::ReverseDimensionOrdered,
            RoutingAlgorithm::Valiant { seed: 3 },
        ] {
            let stats = simulate_detailed(&network, workload, &placement, algorithm, 1);
            assert_eq!(stats.messages as usize, workload.messages_per_round());
            assert!(stats.cycles >= stats.max_hops);
            assert_eq!(stats.latency.messages, stats.messages);
            assert!(stats.latency.max <= stats.cycles);
            assert_eq!(stats.link_loads.total_traversals(), stats.total_hops);
            // Single-phase routes are shortest paths, so the average hops are
            // bounded by the diameter; Valiant pays at most twice that.
            let bound = match algorithm {
                RoutingAlgorithm::Valiant { .. } => 2 * network.grid().diameter(),
                _ => network.grid().diameter(),
            };
            assert!(stats.max_hops <= bound);
        }
    }
}

#[test]
fn embedding_based_placement_beats_identity_for_guest_structured_traffic() {
    // Place a 64-node ring on an 8x8 mesh with the paper's embedding and
    // with the identity; neighbor exchange must cost strictly fewer total
    // hops under the embedding (the identity pays the wrap-around edge).
    let host = Grid::mesh(shape(&[8, 8]));
    let ring = Grid::ring(64).unwrap();
    let network = Network::new(host.clone());
    let workload = Workload::from_task_graph(&ring);
    let paper = Placement::from_embedding(&embed(&ring, &host).unwrap());
    let identity = Placement::identity(64);
    let with_embedding = simulate(&network, &workload, &paper, 1);
    let with_identity = simulate(&network, &workload, &identity, 1);
    assert!(with_embedding.total_hops < with_identity.total_hops);
    assert!(with_embedding.max_hops < with_identity.max_hops);
}

#[test]
fn torus_hosts_never_route_longer_than_mesh_hosts_for_the_same_pattern() {
    // Adding wrap-around links can only shorten shortest-path routes.
    let mesh_network = Network::new(Grid::mesh(shape(&[8, 8])));
    let torus_network = Network::new(Grid::torus(shape(&[8, 8])));
    let placement = Placement::identity(64);
    for workload in [
        patterns::transpose(8, 8),
        patterns::bit_complement(6),
        patterns::tornado(64),
    ] {
        let on_mesh = simulate(&mesh_network, &workload, &placement, 1);
        let on_torus = simulate(&torus_network, &workload, &placement, 1);
        assert!(on_torus.total_hops <= on_mesh.total_hops);
        assert!(on_torus.max_hops <= on_mesh.max_hops);
    }
}

#[test]
fn valiant_routing_bounds_worst_case_load_on_tornado_traffic() {
    // Tornado on a ring-like placement is the textbook case where minimal
    // routing concentrates all traffic in one direction; Valiant spreads it.
    let network = Network::new(Grid::torus(shape(&[16])));
    let placement = Placement::identity(16);
    let workload = patterns::tornado(16);
    let minimal = simulate_detailed(
        &network,
        &workload,
        &placement,
        RoutingAlgorithm::DimensionOrdered,
        1,
    );
    let valiant = simulate_detailed(
        &network,
        &workload,
        &placement,
        RoutingAlgorithm::Valiant { seed: 5 },
        1,
    );
    // Minimal routing sends every tornado message over 7 consecutive links in
    // the same direction; the peak link load equals the hop count.
    assert_eq!(minimal.max_hops, 7);
    assert!(minimal.link_loads.max_load() >= 7);
    // Valiant pays more hops in exchange for spreading traffic over links the
    // minimal route never touches (the backward direction of the ring).
    assert!(valiant.total_hops >= minimal.total_hops);
    assert_eq!(minimal.link_loads.used_links(), 16);
    assert!(valiant.link_loads.used_links() > minimal.link_loads.used_links());
}

#[test]
fn hotspot_cycles_scale_with_the_indegree_of_the_target() {
    // All 63 messages must enter node 0 through its 2 mesh links, so the
    // makespan is at least ⌈63 / 2⌉ cycles regardless of routing.
    let network = Network::new(Grid::mesh(shape(&[8, 8])));
    let placement = Placement::identity(64);
    let workload = patterns::hotspot(64, 0, 1);
    let stats = simulate(&network, &workload, &placement, 1);
    assert!(stats.cycles >= 32);
    assert_eq!(stats.messages, 63);
}
