//! Integration between the embedding machinery and the routing simulator:
//! lower dilation must translate into fewer routed hops for neighbor-exchange
//! traffic, which is the paper's practical motivation.

use torus_mesh_embeddings::prelude::*;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn unit_dilation_embeddings_route_neighbor_exchange_in_one_hop() {
    let cases = vec![
        (Grid::ring(24).unwrap(), Grid::mesh(shape(&[4, 2, 3]))),
        (Grid::ring(36).unwrap(), Grid::torus(shape(&[6, 6]))),
        (Grid::mesh(shape(&[4, 6])), Grid::mesh(shape(&[2, 2, 2, 3]))),
        (Grid::mesh(shape(&[8, 8])), Grid::hypercube(6).unwrap()),
    ];
    for (guest, host) in cases {
        let embedding = embed(&guest, &host).unwrap();
        assert_eq!(embedding.dilation(), 1, "{guest} -> {host}");
        let stats = simulate_embedding(&embedding, 1);
        assert_eq!(stats.max_hops, 1, "{guest} -> {host}");
        assert_eq!(stats.total_hops, stats.messages);
    }
}

#[test]
fn max_hops_equals_measured_dilation_for_neighbor_exchange() {
    // For the neighbor-exchange workload, the longest route is exactly the
    // dilation cost of the placement.
    let cases = vec![
        (Grid::ring(9).unwrap(), Grid::mesh(shape(&[3, 3]))),
        (Grid::torus(shape(&[3, 3])), Grid::mesh(shape(&[3, 3]))),
        (Grid::hypercube(4).unwrap(), Grid::mesh(shape(&[4, 4]))),
        (Grid::mesh(shape(&[4, 2, 3])), Grid::mesh(shape(&[4, 6]))),
    ];
    for (guest, host) in cases {
        let embedding = embed(&guest, &host).unwrap();
        let stats = simulate_embedding(&embedding, 1);
        assert_eq!(
            stats.max_hops,
            embedding.dilation(),
            "{guest} -> {host} ({})",
            embedding.name()
        );
    }
}

#[test]
fn paper_placement_beats_random_placement_on_hops() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let guest = Grid::torus(shape(&[8, 8]));
    let host = Grid::hypercube(6).unwrap();
    let embedding = embed(&guest, &host).unwrap();
    assert!(embedding.dilation() <= 2);

    let network = Network::new(host.clone());
    let workload = Workload::from_task_graph(&guest);

    let paper = Placement::from_embedding(&embedding);
    let paper_stats = simulate(&network, &workload, &paper, 1);

    // A random (but injective) placement.
    let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
    let mut table: Vec<u64> = (0..guest.size()).collect();
    table.shuffle(&mut rng);
    let random = Placement::try_from_table(table).expect("shuffled identity is injective");
    let random_stats = simulate(&network, &workload, &random, 1);

    assert!(
        paper_stats.total_hops < random_stats.total_hops,
        "paper placement ({}) should route fewer hops than a random one ({})",
        paper_stats.total_hops,
        random_stats.total_hops
    );
    assert!(paper_stats.max_hops <= random_stats.max_hops);
}

#[test]
fn simulation_statistics_are_internally_consistent() {
    let guest = Grid::mesh(shape(&[4, 4]));
    let host = Grid::torus(shape(&[4, 4]));
    let embedding = embed(&guest, &host).unwrap();
    let rounds = 3;
    let stats = simulate_embedding(&embedding, rounds);
    assert_eq!(stats.messages, rounds as u64 * 2 * guest.num_edges());
    assert!(stats.cycles >= stats.max_hops);
    assert!(stats.average_hops() <= stats.max_hops as f64);
    assert!(stats.average_hops() >= 1.0);
}
