//! Optimality cross-checks: exhaustive search on tiny instances and the
//! known optimal formulas from the literature (Section 5's comparisons).

use torus_mesh_embeddings::prelude::*;

use embeddings::exhaustive::optimal_dilation_exhaustive;
use embeddings::optimal::{
    optimal_cube_mesh_in_line, optimal_hypercube_in_line, optimal_square_mesh_in_line,
    optimal_square_torus_in_ring, paper_hypercube_in_line,
};
use topology::GraphKind;

fn shape(radices: &[u32]) -> Shape {
    Shape::new(radices.to_vec()).unwrap()
}

#[test]
fn basic_embeddings_are_optimal_on_tiny_instances() {
    // For every tiny host, our line/ring embedding achieves the true optimum
    // found by branch-and-bound.
    let hosts = vec![
        Grid::mesh(shape(&[3, 3])),
        Grid::mesh(shape(&[4, 3])),
        Grid::torus(shape(&[3, 3])),
        Grid::torus(shape(&[2, 5])),
        Grid::mesh(shape(&[2, 2, 3])),
        Grid::line(8).unwrap(),
        Grid::ring(8).unwrap(),
        Grid::hypercube(3).unwrap(),
    ];
    for host in hosts {
        let n = host.size();
        let line = Grid::line(n).unwrap();
        let ring = Grid::ring(n).unwrap();

        let ours_line = embed(&line, &host).unwrap().dilation();
        let best_line = optimal_dilation_exhaustive(&line, &host, None).unwrap();
        assert_eq!(ours_line, best_line, "line into {host}");

        let ours_ring = embed(&ring, &host).unwrap().dilation();
        let best_ring = optimal_dilation_exhaustive(&ring, &host, None).unwrap();
        assert_eq!(ours_ring, best_ring, "ring into {host}");
    }
}

#[test]
fn same_shape_torus_into_mesh_is_optimal_on_tiny_instances() {
    for radices in [vec![3u32, 3], vec![2, 4], vec![2, 2, 3]] {
        let guest = Grid::torus(shape(&radices));
        let host = Grid::mesh(shape(&radices));
        let ours = embed(&guest, &host).unwrap().dilation();
        let best = optimal_dilation_exhaustive(&guest, &host, None).unwrap();
        assert_eq!(ours, best, "torus into mesh of shape {:?}", radices);
    }
}

#[test]
fn increasing_dimension_optimality_on_tiny_instances() {
    // Theorem 32's optimal cases, cross-checked exhaustively.
    let cases = vec![
        // mesh -> mesh: unit is optimal (trivially, 1 is a lower bound).
        (Grid::mesh(shape(&[4, 2])), Grid::mesh(shape(&[2, 2, 2]))),
        // odd torus -> mesh: 2 is optimal.
        (Grid::torus(shape(&[9])), Grid::mesh(shape(&[3, 3]))),
        (Grid::torus(shape(&[3, 3])), Grid::mesh(shape(&[3, 3]))),
    ];
    for (guest, host) in cases {
        let ours = embed(&guest, &host).unwrap().dilation();
        let best = optimal_dilation_exhaustive(&guest, &host, None).unwrap();
        assert_eq!(ours, best, "{guest} -> {host}");
    }
}

#[test]
fn section_5_comparison_square_mesh_in_line() {
    // Our square lowering gives dilation ℓ for the (ℓ,ℓ)-mesh in a line,
    // matching FitzGerald's optimum exactly.
    for ell in [2u32, 3, 4, 5, 6, 8] {
        let guest = Grid::mesh(Shape::square(ell, 2).unwrap());
        let host = Grid::line(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation();
        assert_eq!(
            ours as u64,
            optimal_square_mesh_in_line(ell as u64),
            "ℓ = {ell}"
        );
    }
}

#[test]
fn section_5_comparison_square_torus_in_ring() {
    // Our square lowering gives dilation ℓ for the (ℓ,ℓ)-torus in a ring,
    // matching Ma–Narahari's optimum exactly.
    for ell in [2u32, 3, 4, 5, 6, 8] {
        let guest = Grid::torus(Shape::square(ell, 2).unwrap());
        let host = Grid::ring(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation();
        assert_eq!(
            ours as u64,
            optimal_square_torus_in_ring(ell as u64),
            "ℓ = {ell}"
        );
    }
}

#[test]
fn section_5_comparison_cube_mesh_in_line() {
    // Our dilation is ℓ² versus FitzGerald's optimum ⌊3ℓ²/4 + ℓ/2⌋ — i.e.
    // optimal to within the constant 4/3.
    for ell in [2u32, 3, 4, 5] {
        let guest = Grid::mesh(Shape::square(ell, 3).unwrap());
        let host = Grid::line(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation() as f64;
        let optimal = optimal_cube_mesh_in_line(ell as u64) as f64;
        assert_eq!(ours, (ell as f64).powi(2));
        let ratio = ours / optimal;
        assert!(ratio >= 1.0, "cannot beat the optimum (ℓ = {ell})");
        assert!(
            ratio <= 4.0 / 3.0 + 0.2,
            "ratio {ratio} larger than the paper's 4/3 analysis allows (ℓ = {ell})"
        );
    }
}

#[test]
fn section_5_comparison_hypercube_in_line() {
    // Our dilation is 2^{d−1}; Harper's optimum matches it exactly for
    // d ≤ 3 and is smaller afterwards.
    for d in 2..=8usize {
        let guest = Grid::hypercube(d).unwrap();
        let host = Grid::line(guest.size()).unwrap();
        let ours = embed(&guest, &host).unwrap().dilation() as u128;
        assert_eq!(ours, paper_hypercube_in_line(d as u32), "d = {d}");
        let optimal = optimal_hypercube_in_line(d as u32);
        if d <= 3 {
            assert_eq!(ours, optimal);
        } else {
            assert!(ours > optimal);
        }
    }
}

#[test]
fn lower_bound_is_consistent_with_exhaustive_optimum() {
    use embeddings::lower_bound::dilation_lower_bound;
    // On tiny lowering instances, the Theorem 47 bound never exceeds the true
    // optimum.
    let cases = vec![
        (Grid::mesh(shape(&[3, 3])), Grid::line(9).unwrap()),
        (Grid::mesh(shape(&[2, 2, 3])), Grid::line(12).unwrap()),
        (Grid::torus(shape(&[3, 3])), Grid::ring(9).unwrap()),
        (Grid::mesh(shape(&[4, 3])), Grid::line(12).unwrap()),
    ];
    for (guest, host) in cases {
        let bound = dilation_lower_bound(&guest, &host).unwrap();
        let best = optimal_dilation_exhaustive(&guest, &host, Some(16)).unwrap();
        assert!(
            bound <= best,
            "bound {bound} exceeds the exhaustive optimum {best} for {guest} -> {host}"
        );
    }
}

#[test]
fn square_divisible_increasing_cases_are_optimal() {
    // Theorem 52 claims optimality; cross-check on instances small enough for
    // branch-and-bound.
    let cases = vec![
        (
            Grid::new(GraphKind::Mesh, Shape::square(4, 1).unwrap()),
            Grid::new(GraphKind::Mesh, Shape::square(2, 2).unwrap()),
        ),
        (
            Grid::new(GraphKind::Torus, Shape::square(9, 1).unwrap()),
            Grid::new(GraphKind::Mesh, Shape::square(3, 2).unwrap()),
        ),
        (
            Grid::new(GraphKind::Torus, Shape::square(4, 1).unwrap()),
            Grid::new(GraphKind::Torus, Shape::square(2, 2).unwrap()),
        ),
    ];
    for (guest, host) in cases {
        let ours = embed(&guest, &host).unwrap().dilation();
        let best = optimal_dilation_exhaustive(&guest, &host, None).unwrap();
        assert_eq!(ours, best, "{guest} -> {host}");
    }
}
