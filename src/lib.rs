//! # torus-mesh-embeddings
//!
//! A Rust implementation of the embedding constructions from
//! *Eva Ma and Lixin Tao, "Embeddings Among Toruses and Meshes"*
//! (ICPP 1987; University of Pennsylvania TR MS-CIS-88-63, August 1988).
//!
//! This facade crate re-exports the public API of the workspace member crates:
//!
//! * [`mixedradix`] — mixed-radix numbering systems, δ-distances, sequences and
//!   spreads (the paper's generalized Gray-code machinery).
//! * [`topology`] — toruses, meshes, hypercubes, rings and lines as graphs.
//! * [`embeddings`] — the paper's embedding functions (`f_L`, `g_L`, `h_L`,
//!   `F_V`, `G_V`, `H_V`, simple/general reduction, square-graph chains),
//!   dilation measurement, lower bounds and known-optimal comparators.
//! * [`netsim`] — a small store-and-forward network simulator used by the
//!   examples and benches to show the effect of dilation on routed latency.
//! * [`gridviz`] — text tables and ASCII renderings of embeddings
//!   (Figure 10/12-style pictures).
//! * [`explab`] — the declarative experiment-sweep engine behind the `lab`
//!   CLI and the generated `EXPERIMENTS.md`.
//!
//! ## Quickstart
//!
//! ```
//! use torus_mesh_embeddings::prelude::*;
//!
//! // Embed a 24-node ring in a (4,2,3)-mesh with unit dilation (Theorem 24).
//! let ring = Grid::ring(24).unwrap();
//! let mesh = Grid::mesh(Shape::new(vec![4, 2, 3]).unwrap());
//! let plan = embed(&ring, &mesh).unwrap();
//! assert_eq!(plan.dilation(), 1);
//! ```

pub use embeddings;
pub use explab;
pub use gridviz;
pub use mixedradix;
pub use netsim;
pub use topology;

/// Commonly used items from every member crate.
pub mod prelude {
    pub use embeddings::prelude::*;
    pub use explab::prelude::*;
    pub use gridviz::prelude::*;
    pub use mixedradix::prelude::*;
    pub use netsim::prelude::*;
    pub use topology::prelude::*;
}
